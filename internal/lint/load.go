package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its parsed-only test
// files and the //histburst: annotations found in either.
type Package struct {
	PkgPath string // import path ("histburst/internal/pbe1") or directory
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File // non-test files, type-checked
	Tests   []*ast.File // _test.go files (in-package and external), parsed only

	TypesPkg   *types.Package
	Info       *types.Info
	TypeErrors []error

	Annos *Annotations
}

// Loader parses and type-checks packages. Module-internal imports resolve
// recursively through the loader itself (memoized); everything else — the
// standard library — type-checks through go/importer's source importer, so
// the whole pipeline needs nothing beyond GOROOT sources.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std  types.Importer
	memo map[string]*Package
	cwd  string // for printing package-relative positions
}

// NewLoader creates a loader rooted at moduleDir. The module path is read
// from go.mod; a missing go.mod leaves it empty, which disables
// module-internal import resolution (fine for self-contained fixtures).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:      fset,
		ModuleDir: abs,
		std:       importer.ForCompiler(fset, "source", nil),
		memo:      make(map[string]*Package),
	}
	l.cwd, _ = os.Getwd() //histburst:allow errdrop -- cwd is cosmetic (relative paths); empty is a fine fallback
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
				l.ModulePath = strings.TrimSpace(rest)
				break
			}
		}
	}
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from source
// through the loader, everything else falls back to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.ModulePath != "" {
		if rel, ok := l.importRel(path); ok {
			p, err := l.LoadDir(filepath.Join(l.ModuleDir, rel))
			if err != nil {
				return nil, err
			}
			if p.TypesPkg == nil {
				return nil, fmt.Errorf("package %s did not type-check", path)
			}
			return p.TypesPkg, nil
		}
	}
	return l.std.Import(path)
}

// importRel maps a module-internal import path to a module-relative
// directory.
func (l *Loader) importRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.FromSlash(rest), true
	}
	return "", false
}

// LoadDir loads the package in dir: parses every .go file (with comments),
// type-checks the non-test files, and extracts annotations. Results are
// memoized per directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.memo[key]; ok {
		return p, nil
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)

	p := &Package{Dir: dir, Fset: l.Fset, PkgPath: l.pkgPath(key)}
	// Memoize before type-checking: an (invalid) import cycle then fails in
	// the type checker instead of recursing forever.
	l.memo[key] = p

	// Parse with cwd-relative paths when possible so diagnostics print the
	// same way regardless of whether the package was reached by pattern or
	// by import.
	displayDir := key
	if l.cwd != "" {
		if rel, err := filepath.Rel(l.cwd, key); err == nil && !strings.HasPrefix(rel, "..") {
			displayDir = rel
		}
	}
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(displayDir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.Tests = append(p.Tests, file)
		} else {
			p.Syntax = append(p.Syntax, file)
		}
	}
	if len(p.Syntax) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors; the
	// errors are surfaced through TypeErrors.
	p.TypesPkg, _ = conf.Check(p.PkgPath, l.Fset, p.Syntax, p.Info) //histburst:allow errdrop -- errors are collected via the Error callback into TypeErrors
	p.Annos = parseAnnotations(p)
	return p, nil
}

// pkgPath derives the import path for an absolute package directory, falling
// back to the directory itself outside the module.
func (l *Loader) pkgPath(absDir string) string {
	if l.ModulePath == "" {
		return absDir
	}
	rel, err := filepath.Rel(l.ModuleDir, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return absDir
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// ExpandPatterns resolves package patterns ("./...", "dir/...", plain
// directories) into package directories, skipping testdata, vendor, hidden
// and underscore-prefixed directories exactly like the go tool.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, rec := strings.CutSuffix(pat, "...")
		if !rec {
			add(filepath.Clean(pat))
			continue
		}
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test .go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
