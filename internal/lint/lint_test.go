package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches one golden expectation: `// want "substring"`.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	substr  string
	matched bool
}

// TestFixtures runs each analyzer over its golden package under testdata/
// and checks the produced diagnostics against the `// want` comments:
// every finding must match an expectation on its exact line, and every
// expectation must be hit. A directory named "<analyzer>" or
// "<analyzer>-<variant>" runs that one analyzer (the variant suffix lets
// one analyzer own several fixtures, e.g. noalloc-generics); the
// "annotation" fixture runs the whole suite, since malformed annotations
// are reported regardless of analyzer choice.
func TestFixtures(t *testing.T) {
	byName := make(map[string]*Analyzer)
	for _, a := range All {
		byName[a.Name] = a
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		base, _, _ := strings.Cut(name, "-")
		analyzers := All
		if base != "annotation" {
			a, ok := byName[base]
			if !ok {
				t.Fatalf("testdata/%s does not name an analyzer (have %v)", name, AnalyzerNames())
			}
			analyzers = []*Analyzer{a}
		}
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			wants := parseWants(t, dir)

			loader, err := NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture does not type-check: %v", terr)
			}

			for _, d := range Run([]*Package{pkg}, analyzers) {
				key := fileLine{filepath.Base(d.Pos.Filename), d.Pos.Line}
				exps := wants[key]
				found := false
				for _, exp := range exps {
					if !exp.matched && strings.Contains(d.Message, exp.substr) {
						exp.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, exps := range wants {
				for _, exp := range exps {
					if !exp.matched {
						t.Errorf("%s:%d: expected a diagnostic containing %q, got none",
							key.file, key.line, exp.substr)
					}
				}
			}
		})
	}
}

type fileLine struct {
	file string
	line int
}

// parseWants collects the `// want` expectations of every .go file in dir.
func parseWants(t *testing.T, dir string) map[fileLine][]*expectation {
	t.Helper()
	wants := make(map[fileLine][]*expectation)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(f)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fileLine{base, i + 1}
				wants[key] = append(wants[key], &expectation{substr: m[1]})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", dir)
	}
	return wants
}

// TestSelect pins the -only/-skip contract: skip wins, unknown names error.
func TestSelect(t *testing.T) {
	all, err := Select(nil, nil)
	if err != nil || len(all) != len(All) {
		t.Fatalf("Select(nil, nil) = %d analyzers, err %v", len(all), err)
	}
	got, err := Select([]string{"errdrop", "noalloc"}, []string{"noalloc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "errdrop" {
		t.Fatalf("Select(only, skip) = %v", got)
	}
	if _, err := Select([]string{"nope"}, nil); err == nil {
		t.Fatal("unknown -only name accepted")
	}
	if _, err := Select(nil, []string{"nope"}); err == nil {
		t.Fatal("unknown -skip name accepted")
	}
}
