package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockGuard enforces the RWMutex discipline on served state: a struct field
// whose comment says "guarded by <mu>" may only be touched by code that
// acquired <mu> first. The check is a lexical-dominance approximation — an
// access is considered protected when a <mu>.Lock() or <mu>.RLock() call
// appears earlier in the same function — which exactly matches the
// lock-at-the-top, defer-or-explicit-unlock shape this codebase uses, while
// still catching the real bug class: a handler or helper touching shared
// state with no acquisition anywhere in sight.
//
// One refinement closes the unlock/re-lock escape hatch: when the nearest
// lock event before an access is an explicit (non-deferred) <mu>.Unlock()
// and the function re-acquires <mu> later, the access sits in a window
// where the lock is provably not held and is flagged even though a Lock()
// appears earlier. Unlock calls on error-return paths (with no later
// re-Lock) do not trip this, so the common lock/branch-unlock-return shape
// stays clean.
//
// Functions that run before the value is shared (constructors) carry
// //histburst:allow lockguard with a reason; functions whose CALLER holds
// the lock are annotated //histburst:locked <mu> and checked at their call
// sites by review, not by the tool.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated \"guarded by mu\" are only accessed under mu",
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockGuard(p *Package) []Diagnostic {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkFuncLocks(p, fn, guards)...)
		}
	}
	return out
}

// collectGuards maps each struct field object with a "guarded by <mu>"
// comment to its mutex name.
func collectGuards(p *Package) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guards[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// checkFuncLocks verifies every guarded-field access in fn happens after a
// matching Lock/RLock call (or under a //histburst:locked contract).
func checkFuncLocks(p *Package, fn *ast.FuncDecl, guards map[types.Object]string) []Diagnostic {
	anno := p.Annos.Funcs[fn]
	held := func(mu string) bool {
		if anno == nil {
			return false
		}
		for _, name := range anno.Locked {
			if name == mu {
				return true
			}
		}
		return false
	}

	// First pass: where does each mutex get acquired and explicitly
	// released? Deferred Unlocks hold until function exit, so they are not
	// release events.
	deferred := deferredRanges(fn.Body)
	lockPos := make(map[string][]token.Pos)
	unlockPos := make(map[string][]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mu := receiverLeafName(sel.X)
		if mu == "" {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			lockPos[mu] = append(lockPos[mu], call.Pos())
		case "Unlock", "RUnlock":
			if !inRanges(deferred, call.Pos()) {
				unlockPos[mu] = append(unlockPos[mu], call.Pos())
			}
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := p.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded || held(mu) {
			return true
		}
		var (
			lockBefore, lockAfter bool
			lastEvent             token.Pos
			lastIsUnlock          bool
		)
		for _, l := range lockPos[mu] {
			if l < sel.Pos() {
				lockBefore = true
				if l > lastEvent {
					lastEvent, lastIsUnlock = l, false
				}
			} else {
				lockAfter = true
			}
		}
		for _, u := range unlockPos[mu] {
			if u < sel.Pos() && u > lastEvent {
				lastEvent, lastIsUnlock = u, true
			}
		}
		switch {
		case !lockBefore:
			out = append(out, p.diag(sel.Pos(), "lockguard",
				"access to %q (guarded by %s) without %s.Lock()/RLock() earlier in the function; hold the lock, or annotate //histburst:locked %s if the caller holds it",
				p.render(sel), mu, mu, mu))
		case lastIsUnlock && lockAfter:
			out = append(out, p.diag(sel.Pos(), "lockguard",
				"access to %q (guarded by %s) between %s.Unlock() and a later re-Lock(); the lock is not held in this window",
				p.render(sel), mu, mu))
		}
		return true
	})
	return out
}

// deferredRanges returns the source ranges of every defer statement in body,
// so calls inside them (defer mu.Unlock(), defer func(){...}()) can be told
// apart from immediate ones.
func deferredRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out = append(out, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	return out
}

// inRanges reports whether pos falls inside any of the ranges.
func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// receiverLeafName returns the last identifier of a receiver chain: "mu"
// for s.mu, inner.mu, or a bare mu.
func receiverLeafName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
