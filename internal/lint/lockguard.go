package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockGuard enforces the RWMutex discipline on served state: a struct field
// whose comment says "guarded by <mu>" may only be touched by code that
// acquired <mu> first. The check is a lexical-dominance approximation — an
// access is considered protected when a <mu>.Lock() or <mu>.RLock() call
// appears earlier in the same function — which exactly matches the
// lock-at-the-top, defer-or-explicit-unlock shape this codebase uses, while
// still catching the real bug class: a handler or helper touching shared
// state with no acquisition anywhere in sight.
//
// Functions that run before the value is shared (constructors) carry
// //histburst:allow lockguard with a reason; functions whose CALLER holds
// the lock are annotated //histburst:locked <mu> and checked at their call
// sites by review, not by the tool.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated \"guarded by mu\" are only accessed under mu",
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockGuard(p *Package) []Diagnostic {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkFuncLocks(p, fn, guards)...)
		}
	}
	return out
}

// collectGuards maps each struct field object with a "guarded by <mu>"
// comment to its mutex name.
func collectGuards(p *Package) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				text := ""
				if fld.Doc != nil {
					text += fld.Doc.Text()
				}
				if fld.Comment != nil {
					text += fld.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guards[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// checkFuncLocks verifies every guarded-field access in fn happens after a
// matching Lock/RLock call (or under a //histburst:locked contract).
func checkFuncLocks(p *Package, fn *ast.FuncDecl, guards map[types.Object]string) []Diagnostic {
	anno := p.Annos.Funcs[fn]
	held := func(mu string) bool {
		if anno == nil {
			return false
		}
		for _, name := range anno.Locked {
			if name == mu {
				return true
			}
		}
		return false
	}

	// First pass: where does each mutex get acquired?
	lockPos := make(map[string][]ast.Node)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mu := receiverLeafName(sel.X); mu != "" {
			lockPos[mu] = append(lockPos[mu], call)
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := p.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded || held(mu) {
			return true
		}
		protected := false
		for _, lock := range lockPos[mu] {
			if lock.Pos() < sel.Pos() {
				protected = true
				break
			}
		}
		if !protected {
			out = append(out, p.diag(sel.Pos(), "lockguard",
				"access to %q (guarded by %s) without %s.Lock()/RLock() earlier in the function; hold the lock, or annotate //histburst:locked %s if the caller holds it",
				p.render(sel), mu, mu, mu))
		}
		return true
	})
	return out
}

// receiverLeafName returns the last identifier of a receiver chain: "mu"
// for s.mu, inner.mu, or a bare mu.
func receiverLeafName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
