package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoCarriesKeyAnnotations pins the contract-bearing annotations in the
// repo's own sources. The analyzers only enforce what is declared: deleting
// //histburst:lockorder silently stops lock-order checking, deleting
// //histburst:durable-ack silently stops the fsync-before-ack check, and so
// on. This test turns those silent regressions into failures — the negative
// half of "make lint enforces the invariant".
func TestRepoCarriesKeyAnnotations(t *testing.T) {
	keys := []struct {
		file string
		want string
		why  string
	}{
		{"internal/segstore/segstore.go", "//histburst:lockorder wal.mu Store.mu",
			"the WAL-before-store lock order (PR 6) must stay declared"},
		{"internal/segstore/segstore.go", "//histburst:durable-ack appendLocked",
			"Append/AppendBatch/AppendStream must keep the WAL-before-ack contract"},
		{"internal/segstore/wal.go", "//histburst:durable-ack Sync",
			"wal.appendLocked must keep fsync dominating its ack"},
		{"internal/segstore/segstore.go", "//histburst:atomic",
			"the generation view (and counters) must keep atomic discipline"},
		{"internal/wire/server.go", "//histburst:worker",
			"wire server goroutines must keep a declared shutdown mechanism"},
		{"internal/segstore/segstore.go", "//histburst:worker stop",
			"Open's background loops must keep a declared shutdown mechanism"},
	}
	root := moduleRootForTest(t)
	for _, k := range keys {
		data, err := os.ReadFile(filepath.Join(root, k.file))
		if err != nil {
			t.Fatalf("reading %s: %v", k.file, err)
		}
		if !strings.Contains(string(data), k.want) {
			t.Errorf("%s no longer contains %q — %s", k.file, k.want, k.why)
		}
	}
}

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}
