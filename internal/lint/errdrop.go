package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ErrDrop flags silently discarded error returns in non-test code: blank
// assignments of error values (`_ = f()`, `v, _ := g()`) and expression
// statements whose call returns an error nobody reads. PR 1 existed because
// a dropped Burstiness error was masking real failures; this keeps the tree
// honest from now on.
//
// Deliberate exemptions, documented in docs/ANALYZERS.md:
//   - test files never run through the analyzer (they assert what matters),
//   - deferred and go calls (conventional best-effort cleanup),
//   - the fmt print family (terminal writes; an error path there has no
//     useful recovery in this codebase's tools).
//
// Anything else is either handled or carries //histburst:allow errdrop with
// a reason.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no discarded error returns outside tests",
	Run:  runErrDrop,
}

func runErrDrop(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Syntax {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// The deferred/spawned call's own result is unreadable by
				// construction; its arguments are evaluated eagerly and are
				// plain expressions, not dropped results.
				return false
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if i, n := errResult(p, call); i >= 0 && !exemptCallee(p, call) {
					what := "an error"
					if n > 1 {
						what = "result " + strconv.Itoa(i) + " (an error)"
					}
					out = append(out, p.diag(st.Pos(), "errdrop",
						"call result discarded: %q returns %s that is never checked", p.render(call.Fun), what))
				}
				return true
			case *ast.AssignStmt:
				out = append(out, blankErrAssigns(p, st)...)
				return true
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// blankErrAssigns flags `_ = expr` and `a, _ := f()` where the discarded
// value is an error.
func blankErrAssigns(p *Package, st *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	report := func(pos ast.Node, src string) {
		out = append(out, p.diag(pos.Pos(), "errdrop",
			"error from %q discarded with blank identifier; handle it or annotate //histburst:allow errdrop -- <why>", src))
	}
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		tuple, ok := p.Info.TypeOf(st.Rhs[0]).(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				report(lhs, p.render(st.Rhs[0]))
			}
		}
		return out
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(p.Info.TypeOf(st.Rhs[i])) {
				report(lhs, p.render(st.Rhs[i]))
			}
		}
	}
	return out
}

// errResult returns the index of the first error in the call's results and
// the result count, or (-1, 0) when no error is returned.
func errResult(p *Package, call *ast.CallExpr) (int, int) {
	t := p.Info.TypeOf(call)
	if t == nil {
		return -1, 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return i, tuple.Len()
			}
		}
		return -1, 0
	}
	if isErrorType(t) {
		return 0, 1
	}
	return -1, 0
}

// exemptCallee reports whether the called function's errors are
// conventionally ignorable: the fmt print family, and the Write methods of
// strings.Builder and bytes.Buffer, which document that they always return
// a nil error.
func exemptCallee(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
