package lint

import (
	"go/ast"
	"go/types"
)

// AckPath turns the fsync-before-ack contract into a dataflow check: a
// function annotated //histburst:durable-ack <syncFn> must not report
// success — return a nil error — on any path that is not preceded by a call
// to <syncFn>. The check is the same lexical-dominance approximation
// lockguard uses: a success return is satisfied by any <syncFn> call that
// appears earlier in the function body, which matches the sync-then-advance
// shape of the WAL code exactly; a success return with no earlier sync call
// (an early "nothing to do" return, or the sync call deleted outright) is a
// finding. Returns whose final result is anything but the literal nil are
// treated as failure paths and exempt.
//
// Function literals inside the body are skipped in both directions: a sync
// call inside a callback does not satisfy the outer contract, and a
// callback's returns are not the function's acks.
var AckPath = &Analyzer{
	Name: "ackpath",
	Doc:  "//histburst:durable-ack functions call the declared sync before every success return",
	Run:  runAckPath,
}

func runAckPath(p *Package) []Diagnostic {
	var out []Diagnostic
	for fn, anno := range p.Annos.Funcs {
		if anno.DurableAck == "" || fn.Body == nil {
			continue
		}
		out = append(out, checkAckPath(p, fn, anno.DurableAck)...)
	}
	return out
}

func checkAckPath(p *Package, fn *ast.FuncDecl, syncFn string) []Diagnostic {
	sig, _ := p.Info.TypeOf(fn.Name).(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 ||
		!isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return []Diagnostic{p.diag(fn.Pos(), "ackpath",
			"%s is annotated //histburst:durable-ack but its last result is not error; the contract needs an error to distinguish ack from refusal", fn.Name.Name)}
	}

	var syncCalls []ast.Node
	var returns []*ast.ReturnStmt
	walkOutsideFuncLits(fn.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if calleeLeafName(x) == syncFn {
				syncCalls = append(syncCalls, x)
			}
		case *ast.ReturnStmt:
			returns = append(returns, x)
		}
	})

	var out []Diagnostic
	for _, ret := range returns {
		if !isSuccessReturn(ret) {
			continue
		}
		dominated := false
		for _, c := range syncCalls {
			if c.Pos() < ret.Pos() {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p.diag(ret.Pos(), "ackpath",
				"success return is not preceded by a %s call; //histburst:durable-ack %s requires the sync to dominate every acked return (fsync-before-ack)",
				syncFn, syncFn))
		}
	}
	return out
}

// isSuccessReturn reports whether ret reports success: a naked return (named
// results) or a final result that is the literal nil.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	return ok && id.Name == "nil"
}

// calleeLeafName returns the called function's leaf identifier ("Sync" for
// w.f.Sync(), "appendLocked" for s.wal.appendLocked(...)), or "".
func calleeLeafName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// walkOutsideFuncLits visits every node in body except nested function
// literals.
func walkOutsideFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
