package lint

import (
	"go/ast"
	"go/types"
)

// AtomicGuard enforces the lock-free publication discipline: a struct field
// annotated //histburst:atomic may only be touched through sync/atomic
// operations — a method call on a sync/atomic value type (Load, Store, Add,
// Swap, CompareAndSwap, Or, And) or its address passed to a sync/atomic
// package function (atomic.LoadInt64(&s.f), ...). Any other appearance of
// the field — a plain read, a plain write, taking its address for later use
// — is a finding, because one unsynchronized access is all it takes to break
// the generation-view protocol segstore's queries rely on.
//
// Test files are parsed but not type-checked, so by default they are not
// scanned; AtomicGuardStrict (histlint -atomic-strict) adds a syntactic
// pass over _test.go files matching annotated field names.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc:  "//histburst:atomic fields are only accessed through sync/atomic operations",
	Run:  runAtomicGuard,
}

// AtomicGuardStrict extends the scan to _test.go files (name-based, since
// test files carry no type information). Set by cmd/histlint -atomic-strict.
var AtomicGuardStrict = false

// atomicMethods are the accessor methods of the sync/atomic value types.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func runAtomicGuard(p *Package) []Diagnostic {
	if len(p.Annos.AtomicFields) == 0 && len(p.Annos.AtomicNames) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Syntax {
		out = append(out, atomicScanTyped(p, f)...)
	}
	if AtomicGuardStrict {
		for _, f := range p.Tests {
			out = append(out, atomicScanSyntactic(p, f)...)
		}
	}
	return out
}

// atomicScanTyped flags every use of an annotated field that is not
// sanctioned as a sync/atomic operation, using full type information.
func atomicScanTyped(p *Package, f *ast.File) []Diagnostic {
	annotated := func(sel *ast.SelectorExpr) bool {
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return false
		}
		_, ok := p.Annos.AtomicFields[s.Obj()]
		return ok
	}

	// First pass: collect field selectors appearing as the receiver of an
	// atomic accessor method call or as &arg to a sync/atomic function.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && atomicMethods[m.Sel.Name] {
			if recv, ok := ast.Unparen(m.X).(*ast.SelectorExpr); ok && isAtomicValueType(p.Info.TypeOf(recv)) {
				sanctioned[recv] = true
			}
		}
		if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
						sanctioned[sel] = true
					}
				}
			}
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !annotated(sel) || sanctioned[sel] {
			return true
		}
		out = append(out, p.diag(sel.Pos(), "atomicguard",
			"plain access to %q: the field is //histburst:atomic and may only be touched through sync/atomic operations",
			p.render(sel)))
		return true
	})
	return out
}

// atomicScanSyntactic is the strict-mode pass over test files: no type
// information, so any selector whose leaf matches an annotated field name is
// suspect unless it feeds an atomic accessor pattern.
func atomicScanSyntactic(p *Package, f *ast.File) []Diagnostic {
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && atomicMethods[m.Sel.Name] {
			if recv, ok := ast.Unparen(m.X).(*ast.SelectorExpr); ok {
				sanctioned[recv] = true
			}
		}
		if m, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if pkg, ok := ast.Unparen(m.X).(*ast.Ident); ok && pkg.Name == "atomic" {
				for _, arg := range call.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							sanctioned[sel] = true
						}
					}
				}
			}
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !p.Annos.AtomicNames[sel.Sel.Name] || sanctioned[sel] {
			return true
		}
		out = append(out, p.diag(sel.Pos(), "atomicguard",
			"plain access to %q in a test file: the field name is //histburst:atomic (strict mode matches by name)",
			p.render(sel)))
		return true
	})
	return out
}

// isAtomicValueType reports whether t is one of sync/atomic's value types
// (Int64, Uint64, Bool, Pointer[T], Value, ...).
func isAtomicValueType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}
