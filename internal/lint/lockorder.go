package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockOrder builds the repo-wide lock-acquisition graph and checks it
// against the declared ordering. Nodes are mutexes named by the struct type
// that declares them ("Store.mu", "wal.mu"); package-level or local mutexes
// fall back to their identifier. Edges come from two sources:
//
//   - observed: inside one function, acquiring mutex B while A is still held
//     (a lexical simulation: Lock/RLock pushes, a non-deferred Unlock/RUnlock
//     pops, //histburst:locked annotations seed the held set at entry)
//   - declared: //histburst:lockorder <muA> <muB> comments, stating that muA
//     is acquired strictly before muB
//
// Findings: an observed acquisition that inverts a declared edge, and any
// cycle in the combined graph. The check is an approximation — it cannot see
// acquisitions split across call boundaries unless the callee carries a
// locked annotation — but it pins exactly the bug class PR 6 documented in
// prose: taking Store.mu and then blocking on wal.mu.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "the lock-acquisition graph is acyclic and honors //histburst:lockorder declarations",
	RunAll: runLockOrder,
}

// obsEdge is one observed "from held while acquiring to" pair.
type obsEdge struct {
	from, to string
	pos      token.Position
}

func runLockOrder(pkgs []*Package) []Diagnostic {
	// Declared edges, keyed before -> after.
	declared := make(map[[2]string]token.Position)
	var declOrder [][2]string
	for _, p := range pkgs {
		for _, d := range p.Annos.LockOrder {
			key := [2]string{d.Before, d.After}
			if _, ok := declared[key]; !ok {
				declared[key] = d.Pos
				declOrder = append(declOrder, key)
			}
		}
	}

	// Observed edges: every occurrence for inversion reporting, the first
	// occurrence per edge for the cycle graph.
	var allObs []obsEdge
	observed := make(map[[2]string]token.Position)
	var obsOrder [][2]string
	for _, p := range pkgs {
		for _, e := range observeLockEdges(p) {
			allObs = append(allObs, e)
			key := [2]string{e.from, e.to}
			if _, ok := observed[key]; !ok {
				observed[key] = e.pos
				obsOrder = append(obsOrder, key)
			}
		}
	}

	var out []Diagnostic

	// Contradictory declarations.
	for _, key := range declOrder {
		inv := [2]string{key[1], key[0]}
		if invPos, ok := declared[inv]; ok && less(declared[key], invPos) {
			out = append(out, Diagnostic{Pos: invPos, Analyzer: "lockorder",
				Message: "declaration " + key[1] + " ≺ " + key[0] + " contradicts the earlier //histburst:lockorder " +
					key[0] + " " + key[1] + " at " + shortPos(declared[key])})
		}
	}

	// Observed inversions of declared edges, reported at every violating
	// call site. Inverted edges are excluded from the cycle graph so one bug
	// is not reported twice.
	inverted := make(map[[2]string]bool)
	for _, e := range allObs {
		if declPos, ok := declared[[2]string{e.to, e.from}]; ok {
			inverted[[2]string{e.from, e.to}] = true
			out = append(out, Diagnostic{Pos: e.pos, Analyzer: "lockorder",
				Message: "acquiring " + e.to + " while holding " + e.from +
					" inverts the declared lock order " + e.to + " ≺ " + e.from +
					" (//histburst:lockorder at " + shortPos(declPos) + ")"})
		}
	}

	// Cycle detection over the union graph.
	adj := make(map[string][]string)
	edgePos := make(map[[2]string]token.Position)
	addEdge := func(key [2]string, pos token.Position) {
		if _, ok := edgePos[key]; ok {
			return
		}
		edgePos[key] = pos
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, key := range declOrder {
		addEdge(key, declared[key])
	}
	for _, key := range obsOrder {
		if !inverted[key] {
			addEdge(key, observed[key])
		}
	}
	out = append(out, findLockCycles(adj, edgePos, observed)...)

	return out
}

// findLockCycles reports each elementary cycle in the acquisition graph
// once, anchored at the lexically latest observed edge on the cycle (or the
// latest declaration for declared-only cycles).
func findLockCycles(adj map[string][]string, edgePos map[[2]string]token.Position, observed map[[2]string]token.Position) []Diagnostic {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	var out []Diagnostic
	reported := make(map[string]bool) // canonical node-set key

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string

	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case white:
				dfs(m)
			case gray:
				// Back edge n -> m closes a cycle m ... n.
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cycle := append(append([]string{}, stack[i:]...), m)
				key := canonicalCycle(cycle[:len(cycle)-1])
				if reported[key] {
					continue
				}
				reported[key] = true
				var pos token.Position
				usedObserved := false
				for j := 0; j+1 < len(cycle); j++ {
					e := [2]string{cycle[j], cycle[j+1]}
					if p, ok := observed[e]; ok && (!usedObserved || less(pos, p)) {
						pos, usedObserved = p, true
					}
				}
				if !usedObserved {
					for j := 0; j+1 < len(cycle); j++ {
						if p, ok := edgePos[[2]string{cycle[j], cycle[j+1]}]; ok && less(pos, p) {
							pos = p
						}
					}
				}
				out = append(out, Diagnostic{Pos: pos, Analyzer: "lockorder",
					Message: "lock-order cycle: " + strings.Join(cycle, " -> ")})
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return out
}

// canonicalCycle keys a cycle independent of its starting node.
func canonicalCycle(nodes []string) string {
	min := 0
	for i := range nodes {
		if nodes[i] < nodes[min] {
			min = i
		}
	}
	rot := append(append([]string{}, nodes[min:]...), nodes[:min]...)
	return strings.Join(rot, "|")
}

// observeLockEdges simulates each function's Lock/Unlock calls in lexical
// order and records every "held A, acquiring B" pair.
func observeLockEdges(p *Package) []obsEdge {
	var out []obsEdge
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, funcLockEdges(p, fn)...)
		}
	}
	return out
}

type lockEvent struct {
	pos     token.Pos
	name    string
	acquire bool
}

func funcLockEdges(p *Package, fn *ast.FuncDecl) []obsEdge {
	deferred := deferredRanges(fn.Body)
	var events []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isSyncLockable(p, sel.X) {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if name := mutexNodeName(p, sel.X); name != "" {
				events = append(events, lockEvent{call.Pos(), name, true})
			}
		case "Unlock", "RUnlock":
			if inRanges(deferred, call.Pos()) {
				return true // deferred releases hold until function exit
			}
			if name := mutexNodeName(p, sel.X); name != "" {
				events = append(events, lockEvent{call.Pos(), name, false})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Seed the held set with //histburst:locked contracts, qualified by the
	// receiver type so "locked mu" on a *wal method means wal.mu.
	var held []string
	if anno := p.Annos.Funcs[fn]; anno != nil {
		owner := receiverTypeName(p, fn)
		for _, name := range anno.Locked {
			if owner != "" && !strings.Contains(name, ".") {
				name = owner + "." + name
			}
			held = append(held, name)
		}
	}

	var out []obsEdge
	for _, ev := range events {
		if ev.acquire {
			for _, h := range held {
				if h != ev.name {
					out = append(out, obsEdge{h, ev.name, p.Fset.Position(ev.pos)})
				}
			}
			held = append(held, ev.name)
		} else {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == ev.name {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
	}
	return out
}

// isSyncLockable reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly through a pointer), so unrelated Lock/Unlock methods — file
// locks, flock wrappers — stay out of the graph.
func isSyncLockable(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// mutexNodeName names a lock receiver for the acquisition graph: struct
// fields are qualified by the struct type that declares them, everything
// else falls back to the leaf identifier.
func mutexNodeName(p *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s := p.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			if owner := fieldOwnerName(s); owner != "" {
				return owner + "." + x.Sel.Name
			}
		}
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

// fieldOwnerName walks a selection's embedding path to the struct type that
// directly declares the selected field and returns that type's name.
func fieldOwnerName(s *types.Selection) string {
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := structUnder(t)
		if !ok || i >= st.NumFields() {
			return ""
		}
		t = st.Field(i).Type()
	}
	return namedTypeName(t)
}

// receiverTypeName returns the name of fn's receiver type, or "".
func receiverTypeName(p *Package, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	return namedTypeName(p.Info.TypeOf(fn.Recv.List[0].Type))
}

// namedTypeName unwraps pointers and returns the named type's name, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// structUnder dereferences to the underlying struct type.
func structUnder(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// less orders token.Positions by file, then offset.
func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// shortPos renders file:line for embedding in messages.
func shortPos(p token.Position) string {
	return p.Filename + ":" + strconv.Itoa(p.Line)
}
