// Package lint is histburst's repo-specific static-analysis suite. It loads
// every package in the module with go/parser and go/types (standard library
// only — the module stays dependency-free) and runs analyzers that enforce
// the invariants go vet cannot see:
//
//   - decodersafety: decode-path allocations must size through binenc.SliceLen
//   - errdrop:       no silently discarded error returns outside tests
//   - lockguard:     fields annotated "guarded by mu" are only touched under mu
//   - noalloc:       functions annotated //histburst:noalloc stay free of
//     heap-allocating constructs
//   - fastpath:      every //histburst:fastpath annotation has a live naive
//     twin and an equivalence test referencing both
//   - lockorder:     the repo-wide lock-acquisition graph is acyclic and never
//     inverts a //histburst:lockorder declaration
//   - atomicguard:   fields annotated //histburst:atomic are only touched
//     through sync/atomic operations
//   - goroleak:      go statements are joined in scope or owned by a
//     //histburst:worker function naming its shutdown mechanism
//   - ackpath:       //histburst:durable-ack functions call their declared
//     sync function before every success return (fsync-before-ack)
//
// Annotations use the //histburst: comment namespace; see docs/ANALYZERS.md
// for the grammar and suppression rules.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as file:line:col: analyzer: message — the
// format printed by cmd/histlint and matched by the fixture tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a loaded package. Most analyzers are
// per-package (Run); an analyzer whose invariant spans packages — lockorder's
// acquisition graph — sets RunAll instead and is invoked once with every
// loaded package.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(p *Package) []Diagnostic
	RunAll func(pkgs []*Package) []Diagnostic
}

// All lists every analyzer in the suite, in the order they run.
var All = []*Analyzer{
	DecoderSafety,
	ErrDrop,
	LockGuard,
	NoAlloc,
	FastpathTwin,
	LockOrder,
	AtomicGuard,
	GoroLeak,
	AckPath,
}

// AnalyzerNames returns the names of all registered analyzers.
func AnalyzerNames() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// Select resolves -only/-skip style analyzer filters against the registry.
// Empty only means "all"; skip wins over only. Unknown names are an error so
// a typo cannot silently disable a check.
func Select(only, skip []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	for _, n := range append(append([]string{}, only...), skip...) {
		if byName[n] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %v)", n, AnalyzerNames())
		}
	}
	skipped := make(map[string]bool, len(skip))
	for _, n := range skip {
		skipped[n] = true
	}
	var out []*Analyzer
	for _, a := range All {
		if skipped[a.Name] {
			continue
		}
		if len(only) > 0 {
			keep := false
			for _, n := range only {
				if n == a.Name {
					keep = true
				}
			}
			if !keep {
				continue
			}
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the packages, filters out findings
// suppressed by //histburst:allow annotations, folds in malformed-annotation
// diagnostics, and returns everything sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, p.Annos.Malformed...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, d := range a.Run(p) {
				if p.Annos.Allowed(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	// Cross-package analyzers run once over everything; a finding is
	// suppressed by the allow annotations of whichever package owns its file.
	allowed := func(name string, pos token.Position) bool {
		for _, p := range pkgs {
			if p.Annos.Allowed(name, pos) {
				return true
			}
		}
		return false
	}
	for _, a := range analyzers {
		if a.RunAll == nil {
			continue
		}
		for _, d := range a.RunAll(pkgs) {
			if allowed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// diag builds a Diagnostic at pos for the named analyzer.
func (p *Package) diag(pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// render prints an expression compactly for diagnostics.
func (p *Package) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// isBuiltin reports whether the call target is the named builtin (make, new,
// append, len, cap, ...).
func (p *Package) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves the called *types.Func for a call expression, or nil
// for builtins, conversions and calls through function-typed values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the predeclared error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
