package lint

import (
	"go/ast"
	"go/types"
)

// DecoderSafety enforces the PR 1 huge-allocation fix as a standing
// invariant: inside a function annotated //histburst:decoder, every make()
// whose size is not a compile-time constant must trace back to a
// binenc.(*Reader).SliceLen call, which validates decoded counts against the
// remaining input before anything is allocated. Raw binary.Uvarint /
// reader-driven sizes are exactly how pbe1, pbe2, cmpbe and dyadic once
// allocated multi-GB slices from one corrupt length byte.
var DecoderSafety = &Analyzer{
	Name: "decodersafety",
	Doc:  "decode-path allocations must size through binenc.SliceLen",
	Run:  runDecoderSafety,
}

func runDecoderSafety(p *Package) []Diagnostic {
	var out []Diagnostic
	for fn, anno := range p.Annos.Funcs {
		if !anno.Decoder || fn.Body == nil {
			continue
		}
		tr := newDefTracker(p, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isBuiltin(call.Fun, "make") {
				return true
			}
			for _, arg := range call.Args[1:] {
				if !tr.safeSize(arg) {
					out = append(out, p.diag(arg.Pos(), "decodersafety",
						"allocation size %q does not flow through binenc.SliceLen; validate decoded lengths with SliceLen before allocating",
						p.render(arg)))
				}
			}
			return true
		})
	}
	return out
}

// defTracker records every assignment to each local variable inside one
// function, so a make() size identifier can be traced to its definitions.
type defTracker struct {
	p    *Package
	defs map[types.Object][]ast.Expr
	// unsafeObjs marks variables bound by constructs the tracker cannot
	// follow (multi-value assignments, range clauses).
	unsafeObjs map[types.Object]bool
	visiting   map[types.Object]bool
}

func newDefTracker(p *Package, fn *ast.FuncDecl) *defTracker {
	tr := &defTracker{
		p:          p,
		defs:       make(map[types.Object][]ast.Expr),
		unsafeObjs: make(map[types.Object]bool),
		visiting:   make(map[types.Object]bool),
	}
	obj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if o := p.Info.Defs[id]; o != nil {
			return o
		}
		return p.Info.Uses[id]
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if o := obj(lhs); o != nil {
						tr.defs[o] = append(tr.defs[o], st.Rhs[i])
					}
				}
			} else {
				// n, err := f(): a tuple source is never a blessed size.
				for _, lhs := range st.Lhs {
					if o := obj(lhs); o != nil {
						tr.unsafeObjs[o] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range [2]ast.Expr{st.Key, st.Value} {
				if e != nil {
					if o := obj(e); o != nil {
						tr.unsafeObjs[o] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if o := p.Info.Defs[name]; o != nil && i < len(st.Values) {
					tr.defs[o] = append(tr.defs[o], st.Values[i])
				}
			}
		}
		return true
	})
	return tr
}

// safeSize reports whether a make() size expression is trustworthy:
// constants, len/cap of in-memory values, SliceLen results, and arithmetic
// over those. Anything read raw from the wire — Uvarint results, struct
// fields, function parameters — is not.
func (tr *defTracker) safeSize(e ast.Expr) bool {
	if tv, ok := tr.p.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return tr.safeSize(x.X)
	case *ast.UnaryExpr:
		return tr.safeSize(x.X)
	case *ast.BinaryExpr:
		return tr.safeSize(x.X) && tr.safeSize(x.Y)
	case *ast.Ident:
		obj := tr.p.Info.Uses[x]
		if obj == nil {
			return false
		}
		if tr.unsafeObjs[obj] {
			return false
		}
		defs := tr.defs[obj]
		if len(defs) == 0 {
			return false // parameter, field, or package-level state
		}
		if tr.visiting[obj] {
			// Self-referential assignment (n = n * 2): the other
			// definitions decide.
			return true
		}
		tr.visiting[obj] = true
		defer delete(tr.visiting, obj)
		for _, def := range defs {
			if !tr.safeSize(def) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if tr.p.isBuiltin(x.Fun, "len") || tr.p.isBuiltin(x.Fun, "cap") {
			return true
		}
		if isSliceLenCall(x) {
			return true
		}
		// Conversions like int(n) are as safe as their operand.
		if tv, ok := tr.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return tr.safeSize(x.Args[0])
		}
		return false
	}
	return false
}

// isSliceLenCall matches r.SliceLen(...) by method name. The real call site
// is always binenc.(*Reader).SliceLen; matching by name keeps fixtures
// self-contained and still catches every raw-length allocation, which is the
// failure mode that matters.
func isSliceLenCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "SliceLen"
}
