package lint

import (
	"go/ast"
)

// FastpathTwin keeps the PR 2 bargain honest: every optimized path was
// allowed in only because a naive twin stayed in the tree and an equivalence
// test pins them bit-identical. A function annotated
// //histburst:fastpath <naiveName> must therefore have
//
//  1. a function or method named <naiveName> in the same package (test
//     files count — some twins live next to their equivalence test), and
//  2. at least one _test.go file in the package referencing BOTH names.
//
// Delete the naive twin or its test and the build starts failing the lint
// gate, not just silently losing its safety net.
var FastpathTwin = &Analyzer{
	Name: "fastpath",
	Doc:  "//histburst:fastpath annotations have a naive twin and an equivalence test",
	Run:  runFastpathTwin,
}

func runFastpathTwin(p *Package) []Diagnostic {
	var out []Diagnostic
	for fn, anno := range p.Annos.Funcs {
		if anno.Fastpath == "" {
			continue
		}
		fast, twin := fn.Name.Name, anno.Fastpath
		if !hasFuncNamed(p, twin) {
			out = append(out, p.diag(fn.Name.Pos(), "fastpath",
				"fast path %s declares naive twin %q, but no function or method of that name exists in the package", fast, twin))
			continue
		}
		if !anyTestReferencesBoth(p, fast, twin) {
			out = append(out, p.diag(fn.Name.Pos(), "fastpath",
				"fast path %s has naive twin %s but no _test.go file references both; add an equivalence test", fast, twin))
		}
	}
	return out
}

// hasFuncNamed reports whether any function or method named name is declared
// in the package's source or test files.
func hasFuncNamed(p *Package, name string) bool {
	files := append(append([]*ast.File{}, p.Syntax...), p.Tests...)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name {
				return true
			}
		}
	}
	return false
}

// anyTestReferencesBoth reports whether one test file mentions both
// identifiers (plain or as a selector), excluding the declarations
// themselves — a twin declared in a test file does not count as a
// reference to it.
func anyTestReferencesBoth(p *Package, fast, twin string) bool {
	for _, f := range p.Tests {
		if refersTo(f, fast) && refersTo(f, twin) {
			return true
		}
	}
	return false
}

func refersTo(f *ast.File, name string) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		if fn, ok := n.(*ast.FuncDecl); ok && fn.Name.Name == name {
			// Walk the body but not the declaring name.
			if fn.Body != nil {
				ast.Inspect(fn.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && id.Name == name {
						found = true
					}
					return !found
				})
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
