package lint

import (
	"go/ast"
	"go/types"
)

// NoAlloc pins the PR 2 zero-allocation claims at the source instead of only
// via testing.AllocsPerRun: a function annotated //histburst:noalloc may not
// contain constructs that allocate (or routinely escape to the heap):
//
//   - make / new / append
//   - slice, map and function literals
//   - conversions between string and []byte/[]rune, string concatenation
//   - fmt calls
//   - implicit interface conversions of concrete values (boxing) in calls,
//     assignments and returns
//   - go statements
//
// The check is local: callees are not followed, so a helper that allocates
// must carry (or earn) its own annotation. Method calls through interfaces
// and method values passed to func-typed parameters are allowed — the
// compiler keeps non-escaping closures on the stack, and the AllocsPerRun
// tests remain the ground truth for end-to-end claims.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//histburst:noalloc functions contain no heap-allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Package) []Diagnostic {
	var out []Diagnostic
	for fn, anno := range p.Annos.Funcs {
		if !anno.NoAlloc || fn.Body == nil {
			continue
		}
		out = append(out, checkNoAlloc(p, fn)...)
	}
	return out
}

func checkNoAlloc(p *Package, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, p.diag(n.Pos(), "noalloc", "%s: "+format,
			append([]any{fn.Name.Name + " is annotated //histburst:noalloc"}, args...)...))
	}
	sig, _ := p.Info.TypeOf(fn.Name).(*types.Signature)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			flag(x, "go statement spawns a goroutine (allocates)")
		case *ast.FuncLit:
			flag(x, "closure literal may capture by reference and escape")
			return false // the closure's own body is the closure's problem
		case *ast.CompositeLit:
			t := p.Info.TypeOf(x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(x, "%s literal allocates", p.render(x.Type))
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if t, ok := p.Info.TypeOf(x).(*types.Basic); ok && t.Info()&types.IsString != 0 {
					flag(x, "string concatenation allocates")
				}
			}
		case *ast.ReturnStmt:
			if sig != nil {
				out = append(out, checkBoxing(p, fn, x.Results, resultTypes(sig), "returned")...)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if isBlank(x.Lhs[i]) {
						continue
					}
					out = append(out, checkBoxing(p, fn,
						x.Rhs[i:i+1], []types.Type{p.Info.TypeOf(x.Lhs[i])}, "assigned")...)
				}
			}
		case *ast.CallExpr:
			out = append(out, checkCall(p, fn, x, flag)...)
		}
		return true
	})
	return out
}

// checkCall flags allocating builtins, fmt calls, allocating conversions,
// and interface boxing of arguments.
func checkCall(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, flag func(ast.Node, string, ...any)) []Diagnostic {
	for _, b := range [3]string{"make", "new", "append"} {
		if p.isBuiltin(call.Fun, b) {
			flag(call, "calls %s (heap allocation)", b)
			return nil
		}
	}
	if callee := p.calleeFunc(call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		flag(call, "calls fmt.%s (allocates and boxes arguments)", callee.Name())
		return nil
	}
	// Conversion?
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, p.Info.TypeOf(call.Args[0])
		if isStringByteConversion(dst, src) {
			flag(call, "conversion %s allocates a copy", p.render(call))
		} else if types.IsInterface(dst) && isConcrete(src) {
			flag(call, "conversion of concrete %s to interface boxes it on the heap", src)
		}
		return nil
	}
	// Ordinary call: box-check the arguments against the signature.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []Diagnostic
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through as-is
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		out = append(out, checkBoxing(p, fn, []ast.Expr{arg}, []types.Type{pt}, "passed")...)
	}
	return out
}

// checkBoxing flags concrete values flowing into interface-typed slots.
func checkBoxing(p *Package, fn *ast.FuncDecl, values []ast.Expr, targets []types.Type, verb string) []Diagnostic {
	var out []Diagnostic
	for i, v := range values {
		if i >= len(targets) || targets[i] == nil || !types.IsInterface(targets[i]) {
			continue
		}
		if src := p.Info.TypeOf(v); isConcrete(src) {
			out = append(out, p.diag(v.Pos(), "noalloc",
				"%s is annotated //histburst:noalloc: concrete %s %s as interface %s (boxing allocates)",
				fn.Name.Name, src, verb, targets[i]))
		}
	}
	return out
}

// resultTypes flattens a signature's result tuple.
func resultTypes(sig *types.Signature) []types.Type {
	res := sig.Results()
	out := make([]types.Type, res.Len())
	for i := range out {
		out[i] = res.At(i).Type()
	}
	return out
}

// isConcrete reports whether t is a non-interface, non-untyped-nil type.
func isConcrete(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// isStringByteConversion reports string<->[]byte/[]rune conversions, which
// copy.
func isStringByteConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStr(src))
}
