package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //histburst: annotation namespace (grammar in docs/ANALYZERS.md):
//
//	//histburst:noalloc                     — function must stay heap-allocation-free
//	//histburst:decoder                     — function decodes untrusted input
//	//histburst:fastpath <naiveName>        — function is the fast twin of <naiveName>
//	//histburst:locked <mu> [<mu2> ...]     — caller must hold the named mutexes
//	//histburst:allow <analyzer> -- <why>   — suppress one analyzer here, with a reason
//
// The first four attach to a function declaration's doc comment. allow may
// also sit on (or immediately above) any offending line, or in a function
// doc to suppress for the whole function.

const annoPrefix = "//histburst:"

// FuncAnno carries the annotations attached to one function declaration.
type FuncAnno struct {
	NoAlloc  bool
	Decoder  bool
	Fastpath string   // naive twin's function name
	Locked   []string // mutex field names the caller must hold
	Allow    map[string]bool
}

// Annotations indexes every //histburst: annotation in a package.
type Annotations struct {
	// Funcs maps annotated function declarations (including test files, for
	// fixtures and naive twins) to their parsed annotations.
	Funcs map[*ast.FuncDecl]*FuncAnno

	// allowLines maps file → line → analyzers suppressed on that line.
	allowLines map[string]map[int]map[string]bool
	// allowRanges holds function-scoped suppressions.
	allowRanges []allowRange

	// Malformed collects annotation syntax errors; the driver reports them
	// as findings so a typo cannot silently disable a check.
	Malformed []Diagnostic
}

type allowRange struct {
	file               string
	startLine, endLine int
	analyzers          map[string]bool
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by an allow annotation — on the same line, on the line above,
// or anywhere inside a function whose doc carries the allow.
func (a *Annotations) Allowed(analyzer string, pos token.Position) bool {
	if lines := a.allowLines[pos.Filename]; lines != nil {
		if set := lines[pos.Line]; set != nil && (set[analyzer] || set["*"]) {
			return true
		}
	}
	for _, r := range a.allowRanges {
		if r.file == pos.Filename && pos.Line >= r.startLine && pos.Line <= r.endLine &&
			(r.analyzers[analyzer] || r.analyzers["*"]) {
			return true
		}
	}
	return false
}

// knownAnalyzer reports whether name names a registered analyzer (or "*").
func knownAnalyzer(name string) bool {
	if name == "*" {
		return true
	}
	for _, a := range All {
		if a.Name == name {
			return true
		}
	}
	return false
}

// parseAnnotations scans every comment in the package (source and test
// files) for the //histburst: namespace.
func parseAnnotations(p *Package) *Annotations {
	a := &Annotations{
		Funcs:      make(map[*ast.FuncDecl]*FuncAnno),
		allowLines: make(map[string]map[int]map[string]bool),
	}
	files := make([]*ast.File, 0, len(p.Syntax)+len(p.Tests))
	files = append(files, p.Syntax...)
	files = append(files, p.Tests...)

	// Comments that are part of a function doc are handled with their
	// function; everything else is scanned standalone.
	inDoc := make(map[*ast.Comment]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				inDoc[c] = true
			}
			a.parseFuncDoc(p, fn)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if inDoc[c] {
					continue
				}
				verb, rest, ok := splitAnno(c.Text)
				if !ok {
					continue
				}
				if verb != "allow" {
					a.fail(p, c.Pos(), "//histburst:%s must be part of a function declaration's doc comment", verb)
					continue
				}
				set, ok := a.parseAllow(p, c.Pos(), rest)
				if !ok {
					continue
				}
				a.recordAllowLine(p, c.Pos(), set)
			}
		}
	}
	return a
}

// parseFuncDoc extracts the annotations from one function's doc comment.
func (a *Annotations) parseFuncDoc(p *Package, fn *ast.FuncDecl) {
	anno := &FuncAnno{Allow: make(map[string]bool)}
	found := false
	for _, c := range fn.Doc.List {
		verb, rest, ok := splitAnno(c.Text)
		if !ok {
			continue
		}
		found = true
		switch verb {
		case "noalloc":
			if rest != "" {
				a.fail(p, c.Pos(), "//histburst:noalloc takes no arguments")
				continue
			}
			anno.NoAlloc = true
		case "decoder":
			if rest != "" {
				a.fail(p, c.Pos(), "//histburst:decoder takes no arguments")
				continue
			}
			anno.Decoder = true
		case "fastpath":
			name := strings.TrimSpace(rest)
			if name == "" || len(strings.Fields(name)) != 1 {
				a.fail(p, c.Pos(), "//histburst:fastpath wants exactly one naive twin name, got %q", rest)
				continue
			}
			if name == fn.Name.Name {
				a.fail(p, c.Pos(), "//histburst:fastpath twin must not be the function itself")
				continue
			}
			anno.Fastpath = name
		case "locked":
			names := strings.Fields(rest)
			if len(names) == 0 {
				a.fail(p, c.Pos(), "//histburst:locked wants at least one mutex name")
				continue
			}
			anno.Locked = append(anno.Locked, names...)
		case "allow":
			set, ok := a.parseAllow(p, c.Pos(), rest)
			if !ok {
				continue
			}
			for name := range set {
				anno.Allow[name] = true
			}
			a.recordAllowLine(p, c.Pos(), set)
		default:
			a.fail(p, c.Pos(), "unknown annotation //histburst:%s", verb)
		}
	}
	if found {
		if len(anno.Allow) > 0 {
			start, end := p.Fset.Position(fn.Pos()), p.Fset.Position(fn.End())
			a.allowRanges = append(a.allowRanges, allowRange{
				file: start.Filename, startLine: start.Line, endLine: end.Line, analyzers: anno.Allow,
			})
		}
		a.Funcs[fn] = anno
	}
}

// parseAllow parses "<analyzer> -- <reason>"; the reason is mandatory.
func (a *Annotations) parseAllow(p *Package, pos token.Pos, rest string) (map[string]bool, bool) {
	spec, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		a.fail(p, pos, `//histburst:allow needs a reason: "allow <analyzer> -- <why>"`)
		return nil, false
	}
	names := strings.Fields(spec)
	if len(names) == 0 {
		a.fail(p, pos, "//histburst:allow names no analyzer")
		return nil, false
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if !knownAnalyzer(n) {
			a.fail(p, pos, "//histburst:allow names unknown analyzer %q (have %v)", n, AnalyzerNames())
			return nil, false
		}
		set[n] = true
	}
	return set, true
}

// recordAllowLine suppresses the named analyzers on the annotation's own
// line and, for standalone comment lines, the line below it.
func (a *Annotations) recordAllowLine(p *Package, pos token.Pos, analyzers map[string]bool) {
	position := p.Fset.Position(pos)
	lines := a.allowLines[position.Filename]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		a.allowLines[position.Filename] = lines
	}
	for _, line := range [2]int{position.Line, position.Line + 1} {
		set := lines[line]
		if set == nil {
			set = make(map[string]bool)
			lines[line] = set
		}
		for n := range analyzers {
			set[n] = true
		}
	}
}

// fail records a malformed annotation as a diagnostic.
func (a *Annotations) fail(p *Package, pos token.Pos, format string, args ...any) {
	a.Malformed = append(a.Malformed, p.diag(pos, "annotation", format, args...))
}

// splitAnno splits a "//histburst:verb rest" comment; ok is false for any
// other comment.
func splitAnno(text string) (verb, rest string, ok bool) {
	body, ok := strings.CutPrefix(text, annoPrefix)
	if !ok {
		return "", "", false
	}
	verb, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(rest), true
}
