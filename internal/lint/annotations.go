package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //histburst: annotation namespace (grammar in docs/ANALYZERS.md):
//
//	//histburst:noalloc                     — function must stay heap-allocation-free
//	//histburst:decoder                     — function decodes untrusted input
//	//histburst:fastpath <naiveName>        — function is the fast twin of <naiveName>
//	//histburst:locked <mu> [<mu2> ...]     — caller must hold the named mutexes
//	//histburst:worker <stop>               — function spawns goroutines owned by
//	                                          the named shutdown mechanism
//	//histburst:durable-ack <syncFn>        — every success return must be preceded
//	                                          by a call to <syncFn>
//	//histburst:atomic                      — struct field is only touched through
//	                                          sync/atomic operations
//	//histburst:lockorder <muA> <muB>       — <muA> is acquired strictly before <muB>
//	//histburst:allow <analyzer> -- <why>   — suppress one analyzer here, with a reason
//
// noalloc, decoder, fastpath, locked, worker and durable-ack attach to a
// function declaration's doc comment. atomic attaches to a struct field's doc
// or trailing comment. lockorder is a standalone declaration and may sit
// anywhere — conventionally next to the mutexes it orders. allow may also sit
// on (or immediately above) any offending line, or in a function doc to
// suppress for the whole function.

const annoPrefix = "//histburst:"

// FuncAnno carries the annotations attached to one function declaration.
type FuncAnno struct {
	NoAlloc    bool
	Decoder    bool
	Fastpath   string   // naive twin's function name
	Locked     []string // mutex field names the caller must hold
	Worker     string   // shutdown mechanism owning the spawned goroutines
	DurableAck string   // sync function that must dominate success returns
	Allow      map[string]bool
}

// LockOrderDecl is one //histburst:lockorder edge: Before is acquired
// strictly before After. Names are qualified by the declaring struct type
// ("wal.mu", "Store.mu") to match the acquisition graph's node naming.
type LockOrderDecl struct {
	Before, After string
	Pos           token.Position
}

// Annotations indexes every //histburst: annotation in a package.
type Annotations struct {
	// Funcs maps annotated function declarations (including test files, for
	// fixtures and naive twins) to their parsed annotations.
	Funcs map[*ast.FuncDecl]*FuncAnno

	// AtomicFields maps struct-field objects annotated //histburst:atomic to
	// the annotation's position. Only fields in type-checked (non-test) files
	// appear here.
	AtomicFields map[types.Object]token.Pos
	// AtomicNames holds the bare names of every //histburst:atomic field —
	// including test-file declarations — for the syntactic strict-mode scan.
	AtomicNames map[string]bool

	// LockOrder collects the package's //histburst:lockorder declarations.
	LockOrder []LockOrderDecl

	// allowLines maps file → line → analyzers suppressed on that line.
	allowLines map[string]map[int]map[string]bool
	// allowRanges holds function-scoped suppressions.
	allowRanges []allowRange

	// Malformed collects annotation syntax errors; the driver reports them
	// as findings so a typo cannot silently disable a check.
	Malformed []Diagnostic
}

type allowRange struct {
	file               string
	startLine, endLine int
	analyzers          map[string]bool
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by an allow annotation — on the same line, on the line above,
// or anywhere inside a function whose doc carries the allow.
func (a *Annotations) Allowed(analyzer string, pos token.Position) bool {
	if lines := a.allowLines[pos.Filename]; lines != nil {
		if set := lines[pos.Line]; set != nil && (set[analyzer] || set["*"]) {
			return true
		}
	}
	for _, r := range a.allowRanges {
		if r.file == pos.Filename && pos.Line >= r.startLine && pos.Line <= r.endLine &&
			(r.analyzers[analyzer] || r.analyzers["*"]) {
			return true
		}
	}
	return false
}

// knownAnalyzer reports whether name names a registered analyzer (or "*").
func knownAnalyzer(name string) bool {
	if name == "*" {
		return true
	}
	for _, a := range All {
		if a.Name == name {
			return true
		}
	}
	return false
}

// parseAnnotations scans every comment in the package (source and test
// files) for the //histburst: namespace.
func parseAnnotations(p *Package) *Annotations {
	a := &Annotations{
		Funcs:        make(map[*ast.FuncDecl]*FuncAnno),
		AtomicFields: make(map[types.Object]token.Pos),
		AtomicNames:  make(map[string]bool),
		allowLines:   make(map[string]map[int]map[string]bool),
	}
	files := make([]*ast.File, 0, len(p.Syntax)+len(p.Tests))
	files = append(files, p.Syntax...)
	files = append(files, p.Tests...)

	// Comments that are part of a function doc are handled with their
	// function, and //histburst:atomic comments with their struct field;
	// everything else is scanned standalone.
	consumed := make(map[*ast.Comment]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				consumed[c] = true
			}
			a.parseFuncDoc(p, fn)
		}
		a.parseFieldAnnos(p, f, consumed)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if consumed[c] {
					continue
				}
				verb, rest, ok := splitAnno(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case "allow":
					set, ok := a.parseAllow(p, c.Pos(), rest)
					if !ok {
						continue
					}
					a.recordAllowLine(p, c.Pos(), set)
				case "lockorder":
					a.parseLockOrder(p, c.Pos(), rest)
				case "atomic":
					a.fail(p, c.Pos(), "//histburst:atomic must sit on a struct field's doc or trailing comment")
				default:
					a.fail(p, c.Pos(), "//histburst:%s must be part of a function declaration's doc comment", verb)
				}
			}
		}
	}
	return a
}

// parseFieldAnnos walks the file's struct types for field-attached
// annotations (//histburst:atomic), consuming their comments so the
// standalone scan does not re-report them.
func (a *Annotations) parseFieldAnnos(p *Package, f *ast.File, consumed map[*ast.Comment]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, fld := range st.Fields.List {
			for _, cg := range [2]*ast.CommentGroup{fld.Doc, fld.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					verb, rest, ok := splitAnno(c.Text)
					if !ok || verb != "atomic" {
						continue
					}
					consumed[c] = true
					if rest != "" {
						a.fail(p, c.Pos(), "//histburst:atomic takes no arguments")
						continue
					}
					if len(fld.Names) == 0 {
						a.fail(p, c.Pos(), "//histburst:atomic needs a named field")
						continue
					}
					for _, name := range fld.Names {
						a.AtomicNames[name.Name] = true
						if obj := p.Info.Defs[name]; obj != nil {
							a.AtomicFields[obj] = c.Pos()
						}
					}
				}
			}
		}
		return true
	})
}

// parseLockOrder parses "//histburst:lockorder <muA> <muB>": muA is acquired
// strictly before muB.
func (a *Annotations) parseLockOrder(p *Package, pos token.Pos, rest string) {
	names := strings.Fields(rest)
	if len(names) != 2 {
		a.fail(p, pos, "//histburst:lockorder wants exactly two mutex names (before after), got %q", rest)
		return
	}
	if names[0] == names[1] {
		a.fail(p, pos, "//histburst:lockorder cannot order %q before itself", names[0])
		return
	}
	a.LockOrder = append(a.LockOrder, LockOrderDecl{
		Before: names[0], After: names[1], Pos: p.Fset.Position(pos),
	})
}

// parseFuncDoc extracts the annotations from one function's doc comment.
func (a *Annotations) parseFuncDoc(p *Package, fn *ast.FuncDecl) {
	anno := &FuncAnno{Allow: make(map[string]bool)}
	found := false
	for _, c := range fn.Doc.List {
		verb, rest, ok := splitAnno(c.Text)
		if !ok {
			continue
		}
		found = true
		switch verb {
		case "noalloc":
			if rest != "" {
				a.fail(p, c.Pos(), "//histburst:noalloc takes no arguments")
				continue
			}
			anno.NoAlloc = true
		case "decoder":
			if rest != "" {
				a.fail(p, c.Pos(), "//histburst:decoder takes no arguments")
				continue
			}
			anno.Decoder = true
		case "fastpath":
			name := strings.TrimSpace(rest)
			if name == "" || len(strings.Fields(name)) != 1 {
				a.fail(p, c.Pos(), "//histburst:fastpath wants exactly one naive twin name, got %q", rest)
				continue
			}
			if name == fn.Name.Name {
				a.fail(p, c.Pos(), "//histburst:fastpath twin must not be the function itself")
				continue
			}
			anno.Fastpath = name
		case "locked":
			names := strings.Fields(rest)
			if len(names) == 0 {
				a.fail(p, c.Pos(), "//histburst:locked wants at least one mutex name")
				continue
			}
			anno.Locked = append(anno.Locked, names...)
		case "worker":
			if len(strings.Fields(rest)) != 1 {
				a.fail(p, c.Pos(), "//histburst:worker wants exactly one shutdown-mechanism name, got %q", rest)
				continue
			}
			anno.Worker = rest
		case "durable-ack":
			if len(strings.Fields(rest)) != 1 {
				a.fail(p, c.Pos(), "//histburst:durable-ack wants exactly one sync-function name, got %q", rest)
				continue
			}
			anno.DurableAck = rest
		case "atomic":
			a.fail(p, c.Pos(), "//histburst:atomic must sit on a struct field's doc or trailing comment, not a function doc")
		case "lockorder":
			// A lockorder declaration in a function doc is still a valid
			// standalone declaration; it just conventionally lives with the
			// mutexes. Accept it.
			a.parseLockOrder(p, c.Pos(), rest)
		case "allow":
			set, ok := a.parseAllow(p, c.Pos(), rest)
			if !ok {
				continue
			}
			for name := range set {
				anno.Allow[name] = true
			}
			a.recordAllowLine(p, c.Pos(), set)
		default:
			a.fail(p, c.Pos(), "unknown annotation //histburst:%s", verb)
		}
	}
	if found {
		if len(anno.Allow) > 0 {
			start, end := p.Fset.Position(fn.Pos()), p.Fset.Position(fn.End())
			a.allowRanges = append(a.allowRanges, allowRange{
				file: start.Filename, startLine: start.Line, endLine: end.Line, analyzers: anno.Allow,
			})
		}
		a.Funcs[fn] = anno
	}
}

// parseAllow parses "<analyzer> -- <reason>"; the reason is mandatory.
func (a *Annotations) parseAllow(p *Package, pos token.Pos, rest string) (map[string]bool, bool) {
	spec, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		a.fail(p, pos, `//histburst:allow needs a reason: "allow <analyzer> -- <why>"`)
		return nil, false
	}
	names := strings.Fields(spec)
	if len(names) == 0 {
		a.fail(p, pos, "//histburst:allow names no analyzer")
		return nil, false
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if !knownAnalyzer(n) {
			a.fail(p, pos, "//histburst:allow names unknown analyzer %q (have %v)", n, AnalyzerNames())
			return nil, false
		}
		set[n] = true
	}
	return set, true
}

// recordAllowLine suppresses the named analyzers on the annotation's own
// line and, for standalone comment lines, the line below it.
func (a *Annotations) recordAllowLine(p *Package, pos token.Pos, analyzers map[string]bool) {
	position := p.Fset.Position(pos)
	lines := a.allowLines[position.Filename]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		a.allowLines[position.Filename] = lines
	}
	for _, line := range [2]int{position.Line, position.Line + 1} {
		set := lines[line]
		if set == nil {
			set = make(map[string]bool)
			lines[line] = set
		}
		for n := range analyzers {
			set[n] = true
		}
	}
}

// fail records a malformed annotation as a diagnostic.
func (a *Annotations) fail(p *Package, pos token.Pos, format string, args ...any) {
	a.Malformed = append(a.Malformed, p.diag(pos, "annotation", format, args...))
}

// splitAnno splits a "//histburst:verb rest" comment; ok is false for any
// other comment.
func splitAnno(text string) (verb, rest string, ok bool) {
	body, ok := strings.CutPrefix(text, annoPrefix)
	if !ok {
		return "", "", false
	}
	verb, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(rest), true
}
