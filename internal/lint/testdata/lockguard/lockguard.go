// Package fixture is a histlint golden fixture: each want-comment
// asserts one lockguard diagnostic on its line.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu

	unguarded int
}

func bad(c *counter) int {
	return c.n // want "without mu.Lock"
}

func badWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.unguarded++ // fine: no guard comment on the field
}

func good(c *counter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// lockedCaller documents that its caller already holds the mutex.
//
//histburst:locked mu
func lockedCaller(c *counter) int {
	return c.n
}

func suppressedInline(c *counter) int {
	return c.n //histburst:allow lockguard -- fixture demonstrates inline suppression
}
