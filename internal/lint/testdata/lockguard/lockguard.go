// Package fixture is a histlint golden fixture: each want-comment
// asserts one lockguard diagnostic on its line.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu

	unguarded int
}

func bad(c *counter) int {
	return c.n // want "without mu.Lock"
}

func badWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.unguarded++ // fine: no guard comment on the field
}

func good(c *counter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// lockedCaller documents that its caller already holds the mutex.
//
//histburst:locked mu
func lockedCaller(c *counter) int {
	return c.n
}

func suppressedInline(c *counter) int {
	return c.n //histburst:allow lockguard -- fixture demonstrates inline suppression
}

// relockWindow releases early and re-acquires: the access in between used to
// pass because a Lock() appeared lexically earlier (the defer-unlock/re-lock
// escape hatch). Regression fixture for the window check.
func relockWindow(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "between mu.Unlock"
	c.mu.Lock()
}

// earlyReturnUnlock is the common branch-unlock-return shape; no re-Lock
// follows, so the window check must stay quiet.
func earlyReturnUnlock(c *counter) int {
	c.mu.Lock()
	if c.n > 42 {
		c.mu.Unlock()
		return 1
	}
	v := c.n
	c.mu.Unlock()
	return v
}
