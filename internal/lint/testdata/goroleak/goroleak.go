// Package fixture is a histlint golden fixture for the goroleak analyzer:
// joined goroutines (WaitGroup and channel shapes), worker-annotated
// spawners, and the leaks the analyzer exists to catch.
package fixture

import "sync"

type pool struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (p *pool) loop() { <-p.stop }

func leaky(p *pool) {
	go p.loop() // want "not provably joined"
}

// start owns the worker goroutine: Close closes p.stop and waits on p.wg.
//
//histburst:worker stop
func start(p *pool) {
	p.wg.Add(1)
	go p.loop()
}

//histburst:worker teardown
func badWorker(p *pool) { // want "unknown shutdown mechanism"
	go p.loop()
}

// idle carries a worker annotation but spawns nothing.
//
//histburst:worker stop
func idle(p *pool) {} // want "no go statement"

func joinedWaitGroup(items []int) int {
	var wg sync.WaitGroup
	total := make([]int, len(items))
	for i, it := range items {
		wg.Add(1)
		go func(i, it int) {
			defer wg.Done()
			total[i] = it * 2
		}(i, it)
	}
	wg.Wait()
	sum := 0
	for _, t := range total {
		sum += t
	}
	return sum
}

func joinedChannel() int {
	done := make(chan struct{})
	n := 0
	go func() {
		n = 42
		close(done)
	}()
	<-done
	return n
}

func joinedSend() int {
	out := make(chan int, 1)
	go func() {
		out <- 7
	}()
	return <-out
}
