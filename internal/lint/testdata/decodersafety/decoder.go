// Package fixture is a histlint golden fixture: each want-comment
// asserts one decodersafety diagnostic on its line.
package fixture

// reader stands in for binenc.Reader; decodersafety matches SliceLen by
// method name so the fixture stays self-contained.
type reader struct{ buf []byte }

func (r *reader) SliceLen(max, minElemBytes int) int { return 0 }
func (r *reader) Uvarint() uint64                    { return 0 }

//histburst:decoder
func decodeBad(r *reader) []int64 {
	n := int(r.Uvarint())
	out := make([]int64, n) // want "does not flow through binenc.SliceLen"
	return out
}

//histburst:decoder
func decodeBadTuple(r *reader, counts map[string]int) [][]byte {
	n, ok := counts["rows"]
	if !ok {
		return nil
	}
	return make([][]byte, n) // want "does not flow through binenc.SliceLen"
}

//histburst:decoder
func decodeGood(r *reader) []int64 {
	n := r.SliceLen(1<<20, 8)
	out := make([]int64, n)
	return out
}

//histburst:decoder
func decodeGoodArith(r *reader) []byte {
	n := r.SliceLen(1<<20, 1)
	return make([]byte, 2*n+16)
}

//histburst:decoder
func decodeConst(r *reader) []byte {
	return make([]byte, 64)
}

// unannotated is out of scope: no //histburst:decoder, no finding.
func unannotated(r *reader) []int64 {
	n := int(r.Uvarint())
	return make([]int64, n)
}
