// Package fixture pins noalloc over type-parameterized functions: the
// loader's go/types pass must handle generic declarations (the PR 5
// arena/chunk code is generic), and annotations attach to them like any
// other function.
package fixture

// sum is allocation-free for any numeric element type.
//
//histburst:noalloc
func sum[T ~int | ~int64 | ~float64](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// grow allocates via append, which noalloc must still flag inside a generic
// body.
//
//histburst:noalloc
func grow[T any](xs []T, x T) []T {
	return append(xs, x) // want "calls append"
}

// pair returns a composite literal of a generic struct type.
type box[T any] struct{ a, b T }

//histburst:noalloc
func pick[T any](b box[T], first bool) T {
	if first {
		return b.a
	}
	return b.b
}
