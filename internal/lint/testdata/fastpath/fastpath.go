// Package fixture is a histlint golden fixture: each want-comment
// asserts one fastpath diagnostic on its line.
package fixture

// sumFast has a naive twin and an equivalence test: no findings.
//
//histburst:fastpath sumNaive
func sumFast(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func sumNaive(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// prodFast's twin exists but nothing tests them against each other.
//
//histburst:fastpath prodNaive
func prodFast(xs []int) int { // want "no _test.go file references both"
	total := 1
	for _, x := range xs {
		total *= x
	}
	return total
}

func prodNaive(xs []int) int {
	total := 1
	for i := 0; i < len(xs); i++ {
		total *= xs[i]
	}
	return total
}

// ghostFast names a twin that does not exist at all.
//
//histburst:fastpath ghostNaive
func ghostFast(xs []int) int { // want "no function or method of that name"
	return len(xs)
}
