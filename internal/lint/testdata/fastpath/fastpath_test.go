package fixture

import "testing"

// TestSumEquivalence is the equivalence test the fastpath analyzer looks
// for: it references both sumFast and its naive twin.
func TestSumEquivalence(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5, 9}
	if got, want := sumFast(xs), sumNaive(xs); got != want {
		t.Fatalf("sumFast = %d, sumNaive = %d", got, want)
	}
}
