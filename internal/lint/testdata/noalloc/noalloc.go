// Package fixture is a histlint golden fixture: each want-comment
// asserts one noalloc diagnostic on its line.
package fixture

//histburst:noalloc
func gather(xs []int) []int {
	out := make([]int, 0, len(xs)) // want "calls make"
	for _, x := range xs {
		out = append(out, x) // want "calls append"
	}
	return out
}

//histburst:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//histburst:noalloc
func boxes(v int) any {
	return v // want "boxing allocates"
}

//histburst:noalloc
func convert(s string) []byte {
	return []byte(s) // want "allocates a copy"
}

//histburst:noalloc
func escapes() func() int {
	return func() int { return 1 } // want "closure literal"
}

//histburst:noalloc
func clean(xs []int) int {
	var buf [8]int
	s := buf[:min(len(xs), len(buf))]
	total := 0
	for i := range s {
		s[i] = xs[i]
		total += s[i]
	}
	return total
}

// unannotated may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
