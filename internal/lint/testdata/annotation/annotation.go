// Package fixture is a histlint golden fixture for annotation syntax errors:
// each want-comment asserts one "annotation" diagnostic.
package fixture

import "errors"

func mayFail() error { return errors.New("boom") }

// reasonless drops the mandatory reason.
//
//histburst:allow errdrop // want "needs a reason"
func reasonless() {
	mayFail() // want "never checked" (the malformed allow above suppresses nothing)
}

// typo uses a verb that does not exist.
//
//histburst:noallocs // want "unknown annotation"
func typo() {}

// misplaced puts a function-level verb on a statement.
func misplaced() {
	//histburst:noalloc // want "must be part of a function declaration's doc comment"
	_ = len("x")
}

// unknownAnalyzer allows a check that is not registered.
//
//histburst:allow speed -- it feels fast // want "unknown analyzer"
func unknownAnalyzer() {}

// twoTwins names more than one naive twin.
//
//histburst:fastpath alpha beta // want "exactly one naive twin name"
func twoTwins() {}
