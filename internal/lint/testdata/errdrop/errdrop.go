// Package fixture is a histlint golden fixture: each want-comment
// asserts one errdrop diagnostic on its line.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error      { return errors.New("boom") }
func value() (int, error) { return 0, errors.New("boom") }
func closer() error       { return nil }
func noError() int        { return 1 }

func bad() {
	mayFail()       // want "never checked"
	_ = mayFail()   // want "discarded with blank identifier"
	_, _ = value()  // want "discarded with blank identifier"
	v, _ := value() // want "discarded with blank identifier"
	_ = v
}

func suppressed() {
	mayFail() //histburst:allow errdrop -- fixture demonstrates line-level suppression
	//histburst:allow errdrop -- and the line-above form
	mayFail()
}

func exempt(sb *strings.Builder) {
	noError()                 // no error in the signature
	defer mayFail()           // deferred cleanup is conventional
	go mayFail()              // ditto for fire-and-forget goroutines
	fmt.Println("terminal")   // fmt print family
	sb.WriteString("builder") // strings.Builder documents a nil error
	if err := closer(); err != nil {
		fmt.Println("close failed:", err) // handled: not a drop
	}
}
