// Package fixture is a histlint golden fixture for the atomicguard
// analyzer: annotated fields of both shapes — sync/atomic value types and a
// plain word driven through the sync/atomic functions — with sanctioned and
// plain accesses.
package fixture

import "sync/atomic"

type snapshot struct{ n int }

type counters struct {
	// hits counts lookups.
	//
	//histburst:atomic
	hits atomic.Int64

	// view is the published snapshot pointer.
	//
	//histburst:atomic
	view atomic.Pointer[snapshot]

	// raw is a plain word accessed through the sync/atomic functions.
	//
	//histburst:atomic
	raw int64

	plain int64
}

func good(c *counters) int64 {
	c.hits.Add(1)
	if v := c.view.Load(); v != nil {
		_ = v.n
	}
	atomic.AddInt64(&c.raw, 1)
	if c.hits.CompareAndSwap(7, 8) {
		c.view.Store(&snapshot{n: 1})
	}
	return c.hits.Load() + atomic.LoadInt64(&c.raw)
}

func badDirect(c *counters) {
	c.raw++ // want "plain access"
	c.raw = 7 // want "plain access"
	_ = c.plain // fine: not annotated
}

func badAddress(c *counters) int64 {
	p := &c.hits // want "plain access"
	return p.Load()
}

func suppressed(c *counters) int64 {
	return c.raw //histburst:allow atomicguard -- fixture demonstrates a reasoned suppression
}
