// Package fixture is a multi-file histlint fixture: the guarded field is
// declared here and misused in b.go, so the finding only exists if the
// loader type-checks the package's files together.
package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func set(g *gauge, v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}
