package fixture

func peek(g *gauge) int {
	return g.v // want "without mu.Lock"
}

func peekLocked(g *gauge) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}
