// Package fixture is a histlint golden fixture for the ackpath analyzer:
// the fsync-before-ack contract as success-return dominance.
package fixture

import "errors"

type journal struct {
	dirty bool
	n     int
}

func (j *journal) sync() error { return nil }

// appendGood acks only after the sync call: the shape the contract wants.
//
//histburst:durable-ack sync
func (j *journal) appendGood(data []byte) error {
	if len(data) == 0 {
		return errors.New("empty")
	}
	j.n++
	if err := j.sync(); err != nil {
		return err
	}
	return nil
}

// appendBad acks without ever syncing — both success paths are findings.
//
//histburst:durable-ack sync
func (j *journal) appendBad(data []byte) error {
	if len(data) == 0 {
		return nil // want "not preceded by a sync call"
	}
	j.dirty = true
	return nil // want "not preceded by a sync call"
}

// earlyAck syncs at the end but acks an "empty batch" early; the early
// return needs an explicit suppression or a restructure.
//
//histburst:durable-ack sync
func (j *journal) earlyAck(data []byte) error {
	if len(data) == 0 {
		return nil // want "not preceded by a sync call"
	}
	return j.sync()
}

// emptyOK documents the no-op ack as deliberate with a reasoned allow.
//
//histburst:durable-ack sync
func (j *journal) emptyOK(data []byte) error {
	if len(data) == 0 {
		return nil //histburst:allow ackpath -- nothing accepted, nothing owed durability
	}
	return j.sync()
}

// named exercises naked returns with named results.
//
//histburst:durable-ack sync
func (j *journal) named(data []byte) (err error) {
	if len(data) == 0 {
		return // want "not preceded by a sync call"
	}
	err = j.sync()
	return
}

// wrongSig cannot carry the contract at all.
//
//histburst:durable-ack sync
func (j *journal) wrongSig(data []byte) int { // want "last result is not error"
	return len(data)
}
