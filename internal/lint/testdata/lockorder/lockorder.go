// Package fixture is a histlint golden fixture for the lockorder analyzer:
// a declared edge that one function inverts, and an undeclared two-mutex
// cycle discovered from the acquisition graph alone.
package fixture

import "sync"

type journal struct{ mu sync.Mutex }

type store struct {
	mu sync.Mutex
	j  journal
}

// The WAL-style ordering rule under test: the journal's lock always comes
// before the store's.
//
//histburst:lockorder journal.mu store.mu

func declaredOK(s *store) {
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
}

func inverted(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j.mu.Lock() // want "inverts the declared lock order"
	s.j.mu.Unlock()
}

func releasedFirst(s *store) {
	s.mu.Lock()
	s.mu.Unlock()
	s.j.mu.Lock() // fine: store.mu was already released
	s.j.mu.Unlock()
}

// lockedCallee's caller holds store.mu, so the acquisition below is an
// inversion even though no Lock call on store.mu appears here.
//
//histburst:locked mu
func (s *store) lockedCallee() {
	s.j.mu.Lock() // want "inverts the declared lock order"
	s.j.mu.Unlock()
}

type left struct{ mu sync.Mutex }

type right struct{ mu sync.Mutex }

func cycleA(l *left, r *right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
}

func cycleB(l *left, r *right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock() // want "lock-order cycle"
	defer l.mu.Unlock()
}
