package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak makes goroutine ownership explicit: every `go` statement outside
// test files must either be provably joined inside the spawning function —
// a WaitGroup the function Adds to, the goroutine Dones, and the function
// Waits on; or a channel the goroutine sends on (or closes) that the
// function receives from — or sit in a function annotated
// //histburst:worker <stop> naming the shutdown mechanism (a stop channel,
// a Close method, a context) that bounds the goroutine's lifetime.
//
// The named mechanism must resolve to an identifier declared somewhere in
// the package, so deleting a stop channel without updating its workers is a
// lint failure, not a silent leak.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements are joined in scope or owned by a //histburst:worker function",
	Run:  runGoroLeak,
}

func runGoroLeak(p *Package) []Diagnostic {
	var defined map[string]bool // lazily built: names declared in the package
	definedName := func(name string) bool {
		if defined == nil {
			defined = make(map[string]bool)
			for id, obj := range p.Info.Defs {
				if obj != nil {
					defined[id.Name] = true
				}
			}
		}
		return defined[name]
	}

	var out []Diagnostic
	for _, f := range p.Syntax {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var goStmts []*ast.GoStmt
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					goStmts = append(goStmts, g)
				}
				return true
			})
			anno := p.Annos.Funcs[fn]
			if anno != nil && anno.Worker != "" {
				if !definedName(anno.Worker) {
					out = append(out, p.diag(fn.Pos(), "goroleak",
						"//histburst:worker names unknown shutdown mechanism %q (no such identifier in this package)", anno.Worker))
				}
				if len(goStmts) == 0 {
					out = append(out, p.diag(fn.Pos(), "goroleak",
						"%s is annotated //histburst:worker but contains no go statement; drop the stale annotation", fn.Name.Name))
				}
				continue
			}
			joins := collectJoins(p, fn.Body)
			for _, g := range goStmts {
				if joinedInScope(p, g, joins) {
					continue
				}
				out = append(out, p.diag(g.Pos(), "goroleak",
					"goroutine is not provably joined in this function (no matching WaitGroup Add/Done/Wait or channel send/receive); annotate the spawning function //histburst:worker <stop> naming its shutdown mechanism"))
			}
		}
	}
	return out
}

// joinSites records, for one function body, the WaitGroups it waits on and
// the channels it receives from — the scope-level halves of a join.
type joinSites struct {
	waited map[string]bool // X.Wait() called
	added  map[string]bool // X.Add(..) called
	recvd  map[string]bool // <-X or range over channel X
}

func collectJoins(p *Package, body *ast.BlockStmt) joinSites {
	j := joinSites{
		waited: make(map[string]bool),
		added:  make(map[string]bool),
		recvd:  make(map[string]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Wait":
					if name := receiverLeafName(sel.X); name != "" {
						j.waited[name] = true
					}
				case "Add":
					if name := receiverLeafName(sel.X); name != "" {
						j.added[name] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				if name := receiverLeafName(x.X); name != "" {
					j.recvd[name] = true
				}
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if name := receiverLeafName(x.X); name != "" {
						j.recvd[name] = true
					}
				}
			}
		}
		return true
	})
	return j
}

// joinedInScope reports whether the spawned goroutine's body visibly
// completes a join the enclosing function participates in. Only function
// literals can be inspected; `go x.method()` is never provable and needs a
// worker annotation.
func joinedInScope(p *Package, g *ast.GoStmt, joins joinSites) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if name := receiverLeafName(sel.X); name != "" && joins.waited[name] && joins.added[name] {
					joined = true
				}
			}
			if p.isBuiltin(x.Fun, "close") && len(x.Args) == 1 {
				if name := receiverLeafName(x.Args[0]); name != "" && joins.recvd[name] {
					joined = true
				}
			}
		case *ast.SendStmt:
			if name := receiverLeafName(x.Chan); name != "" && joins.recvd[name] {
				joined = true
			}
		}
		return true
	})
	return joined
}
