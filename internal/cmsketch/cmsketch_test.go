package cmsketch

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{
		{0, 0.1}, {1, 0.1}, {-1, 0.1}, {0.1, 0}, {0.1, 1}, {0.1, -2},
	} {
		if _, err := New(c.eps, c.delta, 1); err == nil {
			t.Errorf("eps=%v delta=%v accepted", c.eps, c.delta)
		}
	}
	s, err := New(0.01, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, w := s.Dims()
	if d < 3 || w < 271 {
		t.Errorf("dims d=%d w=%d too small for eps=0.01 delta=0.05", d, w)
	}
	if _, err := NewWithDims(0, 5, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestNeverUnderestimates(t *testing.T) {
	s, _ := NewWithDims(4, 64, 7)
	truth := make(map[uint64]uint64)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(500))
		s.Inc(k)
		truth[k]++
	}
	for k, f := range truth {
		if got := s.Estimate(k); got < f {
			t.Fatalf("underestimate for %d: %d < %d", k, got, f)
		}
	}
	if s.N() != 20000 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestErrorBound(t *testing.T) {
	// With eps=0.01 and N=50k the additive error should be ≤ εN = 500 for
	// the overwhelming majority of keys (δ=0.01).
	s, _ := New(0.01, 0.01, 42)
	truth := make(map[uint64]uint64)
	r := rand.New(rand.NewSource(8))
	zipf := rand.NewZipf(r, 1.3, 1, 5000)
	const n = 50000
	for i := 0; i < n; i++ {
		k := zipf.Uint64()
		s.Inc(k)
		truth[k]++
	}
	bad := 0
	for k, f := range truth {
		if s.Estimate(k)-f > uint64(0.01*n) {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > 0.05 {
		t.Fatalf("%.1f%% of keys exceed the εN bound", frac*100)
	}
}

func TestConservativeUpdateTighter(t *testing.T) {
	plain, _ := NewWithDims(3, 32, 5)
	cons, _ := NewWithDims(3, 32, 5, WithConservativeUpdate())
	truth := make(map[uint64]uint64)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		k := uint64(r.Intn(300))
		plain.Inc(k)
		cons.Inc(k)
		truth[k]++
	}
	var plainErr, consErr uint64
	for k, f := range truth {
		plainErr += plain.Estimate(k) - f
		if e := cons.Estimate(k); e < f {
			t.Fatalf("conservative update underestimated %d: %d < %d", k, e, f)
		} else {
			consErr += e - f
		}
	}
	if consErr > plainErr {
		t.Fatalf("conservative update should not be worse: %d vs %d", consErr, plainErr)
	}
}

func TestAddDelta(t *testing.T) {
	s, _ := NewWithDims(3, 128, 9)
	s.Add(7, 100)
	s.Add(7, 0) // no-op
	if got := s.Estimate(7); got < 100 {
		t.Fatalf("Estimate = %d, want ≥ 100", got)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d, want 100", s.N())
	}
}

func TestAbsentKeySmall(t *testing.T) {
	s, _ := NewWithDims(4, 1024, 11)
	for i := uint64(0); i < 100; i++ {
		s.Inc(i)
	}
	// A key never added collides with ≤ a few counters; with w=1024 and
	// only 100 distinct keys its estimate is almost surely 0.
	if got := s.Estimate(999999); got > 2 {
		t.Fatalf("absent key estimate = %d", got)
	}
}

func TestBytes(t *testing.T) {
	s, _ := NewWithDims(3, 100, 1)
	if got := s.Bytes(); got != 2400 {
		t.Fatalf("Bytes = %d, want 2400", got)
	}
}
