// Package cmsketch implements the classic Count-Min sketch of Cormode and
// Muthukrishnan (paper Section II-C), the substrate CM-PBE generalizes.
//
// A CM sketch keeps d = ⌈ln(1/δ)⌉ rows of w = ⌈e/ε⌉ counters. Each update
// increments one counter per row chosen by a row-specific hash; a point
// query returns the minimum over the rows, guaranteeing
// Pr[ f̂(x) − f(x) ≤ εN ] ≥ 1 − δ with f̂ ≥ f always.
//
// Besides serving as a reference point in benchmarks (a plain CM sketch can
// only summarize frequencies "up to now" — precisely the limitation that
// motivates CM-PBE), the conservative-update variant is exposed for
// ablations.
package cmsketch

import (
	"fmt"
	"math"

	"histburst/internal/hash"
)

// Sketch is a Count-Min sketch over uint64 keys.
type Sketch struct {
	d, w         int
	rows         [][]uint64
	hf           hash.Family
	n            uint64 // total updates
	conservative bool
}

// Option configures a Sketch.
type Option func(*Sketch)

// WithConservativeUpdate enables conservative update: an increment only
// raises the counters that currently equal the key's estimate, tightening
// one-sided error at slightly higher update cost.
func WithConservativeUpdate() Option {
	return func(s *Sketch) { s.conservative = true }
}

// New creates a sketch with failure probability delta and relative error
// epsilon (both in (0,1)), seeded deterministically.
func New(epsilon, delta float64, seed int64, opts ...Option) (*Sketch, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return nil, fmt.Errorf("cmsketch: epsilon must be in (0,1), got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("cmsketch: delta must be in (0,1), got %v", delta)
	}
	d := int(math.Ceil(math.Log(1 / delta)))
	w := int(math.Ceil(math.E / epsilon))
	return NewWithDims(d, w, seed, opts...)
}

// NewWithDims creates a sketch with explicit dimensions.
func NewWithDims(d, w int, seed int64, opts ...Option) (*Sketch, error) {
	if d <= 0 || w <= 0 {
		return nil, fmt.Errorf("cmsketch: dimensions must be positive, got d=%d w=%d", d, w)
	}
	hf, err := hash.NewFamily(d, w, seed)
	if err != nil {
		return nil, err
	}
	rows := make([][]uint64, d)
	for i := range rows {
		rows[i] = make([]uint64, w)
	}
	s := &Sketch{d: d, w: w, rows: rows, hf: hf}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Dims returns the sketch dimensions (d rows, w columns).
func (s *Sketch) Dims() (d, w int) { return s.d, s.w }

// Add increments the count of key by delta (delta ≥ 1).
func (s *Sketch) Add(key uint64, delta uint64) {
	if delta == 0 {
		return
	}
	s.n += delta
	if !s.conservative {
		for i := 0; i < s.d; i++ {
			s.rows[i][s.hf.Hash(i, key)] += delta
		}
		return
	}
	est := s.Estimate(key) + delta
	for i := 0; i < s.d; i++ {
		c := &s.rows[i][s.hf.Hash(i, key)]
		if *c < est {
			*c = est
		}
	}
}

// Inc increments the count of key by one.
func (s *Sketch) Inc(key uint64) { s.Add(key, 1) }

// Estimate returns the point estimate f̂(key) = min over rows.
func (s *Sketch) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < s.d; i++ {
		if c := s.rows[i][s.hf.Hash(i, key)]; c < min {
			min = c
		}
	}
	return min
}

// N returns the total number of updates (the stream size weight).
func (s *Sketch) N() uint64 { return s.n }

// Bytes returns the counter array footprint.
func (s *Sketch) Bytes() int { return 8 * s.d * s.w }
