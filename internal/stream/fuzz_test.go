package stream

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the stream decoder never panics or over-allocates on
// arbitrary input, and that anything it accepts round-trips.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, Stream{{Event: 1, Time: 5}, {Event: 2, Time: 9}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("HBST junk"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be a valid stream that re-encodes cleanly.
		if err := s.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid stream: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, err := Read(&out)
		if err != nil || len(s2) != len(s) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(s2), len(s))
		}
	})
}
