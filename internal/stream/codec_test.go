package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	s := Stream{{1, 0}, {2, 0}, {864, 1}, {3, 100000}, {3, 100000}, {1, 2678400}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], s[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatalf("Write(empty): %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(empty): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Read(empty) = %v", got)
	}
}

func TestCodecRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, Stream{{1, 5}, {1, 2}})
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("Write(unsorted) = %v, want ErrOutOfOrder", err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,                         // empty
		[]byte("short"),             // truncated header
		bytes.Repeat([]byte{0}, 16), // bad magic
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: Read = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestCodecRejectsTruncatedBody(t *testing.T) {
	s := Stream{{1, 1}, {2, 2}, {3, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 16; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("cut=%d: Read = %v, want ErrBadFormat", cut, err)
		}
	}
}

func TestCodecRejectsHugeCountGracefully(t *testing.T) {
	// A header claiming 2^40 elements with no body must fail cleanly, not OOM.
	var buf bytes.Buffer
	if err := Write(&buf, Stream{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8], raw[9], raw[10], raw[11], raw[12] = 0, 0, 0, 0, 1
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Read = %v, want ErrBadFormat", err)
	}
}

func TestCodecProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := make(Stream, int(n))
		cur := int64(0)
		for i := range s {
			cur += int64(r.Intn(1000))
			s[i] = Element{Event: r.Uint64() % 2048, Time: cur}
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
