// Package stream defines the event-stream model used throughout histburst.
//
// An event stream is an ordered sequence of (event id, timestamp) pairs with
// non-decreasing timestamps, matching the paper's definition
// S = {(a_1,t_1), (a_2,t_2), ...}. The package also provides single-event
// timestamp sequences (S_e), temporal substreams (S[t1,t2]), k-way merging,
// and a compact binary serialization used by the command-line tools.
package stream

import (
	"errors"
	"fmt"
	"sort"
)

// Element is one stream entry: event id plus timestamp.
type Element struct {
	// Event identifies the event this element mentions. Ids live in a
	// dense space [0, K).
	Event uint64
	// Time is the element's timestamp. The unit is application-defined
	// (the experiments use seconds); only ordering and differences matter.
	Time int64
}

// Stream is an ordered multiset of elements. A valid stream has
// non-decreasing timestamps; use Sort or Validate to establish/verify that.
type Stream []Element

// ErrOutOfOrder reports a stream whose timestamps decrease.
var ErrOutOfOrder = errors.New("stream: timestamps out of order")

// Validate returns an error if the stream's timestamps are not
// non-decreasing.
func (s Stream) Validate() error {
	for i := 1; i < len(s); i++ {
		if s[i].Time < s[i-1].Time {
			return fmt.Errorf("%w: element %d has time %d after %d",
				ErrOutOfOrder, i, s[i].Time, s[i-1].Time)
		}
	}
	return nil
}

// Sort orders the stream by timestamp (stably, so elements sharing a
// timestamp keep their relative order).
func (s Stream) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time < s[j].Time })
}

// Span returns the smallest and largest timestamps in the stream. It returns
// zeros for an empty stream; ok reports whether the stream was non-empty.
func (s Stream) Span() (lo, hi int64, ok bool) {
	if len(s) == 0 {
		return 0, 0, false
	}
	return s[0].Time, s[len(s)-1].Time, true
}

// Sub returns the temporal substream S[t1,t2]: all elements with
// t1 <= Time <= t2. The receiver must be sorted. The result aliases the
// receiver's backing array.
func (s Stream) Sub(t1, t2 int64) Stream {
	if t1 > t2 {
		return nil
	}
	lo := sort.Search(len(s), func(i int) bool { return s[i].Time >= t1 })
	hi := sort.Search(len(s), func(i int) bool { return s[i].Time > t2 })
	return s[lo:hi]
}

// Filter returns the single-event stream S_e for event e: the ordered
// sequence of timestamps at which e was mentioned.
func (s Stream) Filter(e uint64) TimestampSeq {
	var ts TimestampSeq
	for _, el := range s {
		if el.Event == e {
			ts = append(ts, el.Time)
		}
	}
	return ts
}

// Events returns the set of distinct event ids in the stream, ascending.
func (s Stream) Events() []uint64 {
	seen := make(map[uint64]struct{})
	for _, el := range s {
		seen[el.Event] = struct{}{}
	}
	out := make([]uint64, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts returns the total frequency of every event in the stream.
func (s Stream) Counts() map[uint64]int64 {
	m := make(map[uint64]int64)
	for _, el := range s {
		m[el.Event]++
	}
	return m
}

// Merge merges sorted streams into one sorted stream. It is a simple k-way
// merge; inputs must individually be sorted.
func Merge(streams ...Stream) Stream {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make(Stream, 0, total)
	idx := make([]int, len(streams))
	for {
		best := -1
		var bestTime int64
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].Time < bestTime {
				best = i
				bestTime = s[idx[i]].Time
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
}

// TimestampSeq is a single-event stream S_e: an ordered sequence of
// timestamps, possibly with duplicates (multiple mentions at one instant).
type TimestampSeq []int64

// Validate returns an error if the sequence is not non-decreasing.
func (ts TimestampSeq) Validate() error {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return fmt.Errorf("%w: timestamp %d at index %d after %d",
				ErrOutOfOrder, ts[i], i, ts[i-1])
		}
	}
	return nil
}

// CountAtOrBefore returns the number of timestamps <= t, i.e. the exact
// cumulative frequency F(t). The sequence must be sorted.
func (ts TimestampSeq) CountAtOrBefore(t int64) int64 {
	return int64(sort.Search(len(ts), func(i int) bool { return ts[i] > t }))
}

// CountIn returns the number of timestamps in [t1, t2], i.e. the exact
// frequency f(t1, t2). The sequence must be sorted.
func (ts TimestampSeq) CountIn(t1, t2 int64) int64 {
	if t1 > t2 {
		return 0
	}
	return ts.CountAtOrBefore(t2) - ts.CountAtOrBefore(t1-1)
}

// ToStream lifts the sequence back into a Stream with the given event id.
func (ts TimestampSeq) ToStream(e uint64) Stream {
	s := make(Stream, len(ts))
	for i, t := range ts {
		s[i] = Element{Event: e, Time: t}
	}
	return s
}
