package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary stream format (little-endian):
//
//	magic   uint32  = 0x48425354 ("HBST")
//	version uint16  = 1
//	flags   uint16  (reserved, zero)
//	count   uint64
//	count × { event uvarint, timeDelta varint }
//
// Timestamps are delta-encoded against the previous element, which makes a
// sorted stream of seconds-granularity data compress to a couple of bytes per
// element. A trailing CRC is intentionally omitted: the tools operate on
// local files and validation is structural (magic, version, count, order).

const (
	codecMagic   = 0x48425354
	codecVersion = 1
)

// ErrBadFormat reports a malformed or unsupported serialized stream.
var ErrBadFormat = errors.New("stream: bad serialized format")

// Write serializes the stream to w in the binary format above. The stream
// must be sorted (Validate passes); Write checks and refuses otherwise so a
// corrupted file can never be produced.
func Write(w io.Writer, s Stream) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], codecMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], codecVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(s)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, el := range s {
		n := binary.PutUvarint(buf[:], el.Event)
		n += binary.PutVarint(buf[n:], el.Time-prev)
		prev = el.Time
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a stream previously written by Write.
//
//histburst:decoder
func Read(r io.Reader) (Stream, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	const maxPrealloc = 1 << 22 // cap preallocation so a hostile header can't OOM us
	capHint := count
	if capHint > maxPrealloc {
		capHint = maxPrealloc
	}
	s := make(Stream, 0, capHint) //histburst:allow decodersafety -- capacity hint clamped to maxPrealloc; growth is append-driven
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		e, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at element %d: %v", ErrBadFormat, i, err)
		}
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at element %d: %v", ErrBadFormat, i, err)
		}
		if d < 0 && i > 0 {
			return nil, fmt.Errorf("%w: negative time delta at element %d", ErrBadFormat, i)
		}
		t := prev + d
		if i > 0 && t < prev {
			return nil, fmt.Errorf("%w: timestamp overflow at element %d", ErrBadFormat, i)
		}
		prev = t
		s = append(s, Element{Event: e, Time: t})
	}
	return s, nil
}
