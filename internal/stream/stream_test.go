package stream

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	ok := Stream{{1, 1}, {2, 1}, {3, 2}, {1, 5}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate(sorted) = %v, want nil", err)
	}
	bad := Stream{{1, 2}, {2, 1}}
	if err := bad.Validate(); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("Validate(unsorted) = %v, want ErrOutOfOrder", err)
	}
	if err := (Stream{}).Validate(); err != nil {
		t.Fatalf("Validate(empty) = %v, want nil", err)
	}
}

func TestSortIsStable(t *testing.T) {
	s := Stream{{Event: 3, Time: 5}, {Event: 1, Time: 2}, {Event: 2, Time: 5}, {Event: 9, Time: 2}}
	s.Sort()
	want := Stream{{Event: 1, Time: 2}, {Event: 9, Time: 2}, {Event: 3, Time: 5}, {Event: 2, Time: 5}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Sort = %v, want %v", s, want)
	}
}

func TestSpan(t *testing.T) {
	if _, _, ok := (Stream{}).Span(); ok {
		t.Fatal("Span(empty) reported ok")
	}
	lo, hi, ok := Stream{{1, 3}, {1, 7}, {1, 9}}.Span()
	if !ok || lo != 3 || hi != 9 {
		t.Fatalf("Span = %d,%d,%v; want 3,9,true", lo, hi, ok)
	}
}

func TestSub(t *testing.T) {
	s := Stream{{1, 1}, {2, 3}, {3, 3}, {4, 5}, {5, 9}}
	cases := []struct {
		t1, t2 int64
		want   int
	}{
		{0, 10, 5},
		{3, 3, 2},
		{2, 4, 2},
		{6, 8, 0},
		{9, 9, 1},
		{5, 1, 0}, // inverted range
		{-5, 0, 0},
	}
	for _, c := range cases {
		if got := len(s.Sub(c.t1, c.t2)); got != c.want {
			t.Errorf("Sub(%d,%d) has %d elements, want %d", c.t1, c.t2, got, c.want)
		}
	}
}

func TestFilterAndEvents(t *testing.T) {
	s := Stream{{7, 1}, {2, 2}, {7, 2}, {7, 5}, {2, 6}}
	if got := s.Filter(7); !reflect.DeepEqual(got, TimestampSeq{1, 2, 5}) {
		t.Fatalf("Filter(7) = %v", got)
	}
	if got := s.Filter(99); got != nil {
		t.Fatalf("Filter(absent) = %v, want nil", got)
	}
	if got := s.Events(); !reflect.DeepEqual(got, []uint64{2, 7}) {
		t.Fatalf("Events = %v, want [2 7]", got)
	}
	counts := s.Counts()
	if counts[7] != 3 || counts[2] != 2 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestMerge(t *testing.T) {
	a := Stream{{1, 1}, {1, 4}, {1, 9}}
	b := Stream{{2, 2}, {2, 4}}
	c := Stream{}
	m := Merge(a, b, c)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if len(m) != 5 {
		t.Fatalf("merged length = %d, want 5", len(m))
	}
	if m[0].Time != 1 || m[4].Time != 9 {
		t.Fatalf("merge order wrong: %v", m)
	}
}

func TestMergeProperty(t *testing.T) {
	// Merging random sorted shards preserves multiset and order.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var shards []Stream
		total := 0
		for i := 0; i < 1+r.Intn(4); i++ {
			n := r.Intn(20)
			sh := make(Stream, n)
			t0 := int64(0)
			for j := range sh {
				t0 += int64(r.Intn(5))
				sh[j] = Element{Event: uint64(r.Intn(5)), Time: t0}
			}
			shards = append(shards, sh)
			total += n
		}
		m := Merge(shards...)
		return len(m) == total && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampSeqCounts(t *testing.T) {
	ts := TimestampSeq{1, 2, 2, 5, 9}
	if got := ts.CountAtOrBefore(0); got != 0 {
		t.Errorf("CountAtOrBefore(0) = %d", got)
	}
	if got := ts.CountAtOrBefore(2); got != 3 {
		t.Errorf("CountAtOrBefore(2) = %d, want 3", got)
	}
	if got := ts.CountAtOrBefore(100); got != 5 {
		t.Errorf("CountAtOrBefore(100) = %d, want 5", got)
	}
	if got := ts.CountIn(2, 5); got != 3 {
		t.Errorf("CountIn(2,5) = %d, want 3", got)
	}
	if got := ts.CountIn(3, 4); got != 0 {
		t.Errorf("CountIn(3,4) = %d, want 0", got)
	}
	if got := ts.CountIn(9, 1); got != 0 {
		t.Errorf("CountIn(inverted) = %d, want 0", got)
	}
}

func TestCountInMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := make(TimestampSeq, 200)
	cur := int64(0)
	for i := range ts {
		cur += int64(rng.Intn(4))
		ts[i] = cur
	}
	for trial := 0; trial < 200; trial++ {
		t1 := int64(rng.Intn(int(cur) + 2))
		t2 := int64(rng.Intn(int(cur) + 2))
		var want int64
		for _, v := range ts {
			if v >= t1 && v <= t2 {
				want++
			}
		}
		if got := ts.CountIn(t1, t2); got != want {
			t.Fatalf("CountIn(%d,%d) = %d, want %d", t1, t2, got, want)
		}
	}
}

func TestToStream(t *testing.T) {
	ts := TimestampSeq{3, 4, 4}
	s := ts.ToStream(11)
	want := Stream{{11, 3}, {11, 4}, {11, 4}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("ToStream = %v, want %v", s, want)
	}
}

func TestMergeDuplicateTimestampsAcrossShards(t *testing.T) {
	// A seal point may split a run of equal timestamps across shards (the
	// segment store's head split keeps the frontier run together, but
	// external shard producers need not). Merge must keep ties in shard
	// order — earlier shard first — so the result is deterministic and a
	// re-merge of re-split shards is the identity.
	a := Stream{{1, 1}, {2, 5}, {3, 5}}
	b := Stream{{4, 5}, {5, 5}, {6, 7}}
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	wantEvents := []uint64{1, 2, 3, 4, 5, 6}
	if len(m) != len(wantEvents) {
		t.Fatalf("merged length = %d, want %d", len(m), len(wantEvents))
	}
	for i, e := range wantEvents {
		if m[i].Event != e {
			t.Fatalf("tie order broken at %d: got %v", i, m)
		}
	}
	// Swapping the shards swaps the tie order — shard order, not id order.
	m2 := Merge(b, a)
	if m2[1].Event != 4 {
		t.Fatalf("swapped shards kept old tie order: %v", m2)
	}
	// Degenerate inputs: no shards, and all-empty shards.
	if m := Merge(); len(m) != 0 {
		t.Fatalf("Merge() = %v", m)
	}
	if m := Merge(Stream{}, nil, Stream{}); len(m) != 0 {
		t.Fatalf("Merge of empties = %v", m)
	}
}
