package histburst_test

import (
	"math"
	"sync"
	"testing"

	"histburst"
	"histburst/internal/exact"
	"histburst/internal/textmap"
	"histburst/internal/workload"
)

// TestFullPipeline exercises the complete system the paper describes: raw
// message text M flows through the mapping h (textmap) into an event
// identifier stream S, into the sketch, and all three query types are
// checked against the exact oracle built from the same mapped stream.
func TestFullPipeline(t *testing.T) {
	spec := workload.Spec{
		Horizon: 40_000,
		Seed:    5,
		Profiles: []workload.EventProfile{
			{ID: 0, BaseRate: 0.05},
			{ID: 1, BaseRate: 0.05, Bursts: []workload.BurstWindow{
				{Start: 20_000, Peak: 21_000, End: 26_000, PeakRate: 2},
			}},
			{ID: 2, BaseRate: 0.02},
			{ID: 3, BaseRate: 0.02},
		},
	}
	msgs, err := workload.Messages(spec, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Fatal("no messages generated")
	}

	mapper := textmap.NewHashtagMapper(0)
	det, err := histburst.New(4, histburst.WithPBE2(2), histburst.WithSketchDims(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	hashtagToID := map[uint64]uint64{} // mapper id -> generator id
	for _, m := range msgs {
		for _, id := range mapper.Map(m.Text) {
			det.Append(id, m.Time)
			oracle.Append(id, m.Time)
		}
	}
	det.Finish()
	_ = hashtagToID

	if det.N() != oracle.Len() {
		t.Fatalf("pipeline dropped elements: %d vs %d", det.N(), oracle.Len())
	}
	// POINT queries across all mapped events.
	tau := int64(1000)
	var sumErr float64
	samples := 0
	for _, e := range oracle.Events() {
		for q := int64(0); q <= oracle.MaxTime(); q += 333 {
			b, err := det.Burstiness(e, q, tau)
			if err != nil {
				t.Fatal(err)
			}
			sumErr += math.Abs(b - float64(oracle.Burstiness(e, q, tau)))
			samples++
		}
	}
	if mean := sumErr / float64(samples); mean > 6 {
		t.Fatalf("pipeline mean point error %.2f too large", mean)
	}

	// The planted burst (generator event 1) is discoverable end to end. Its
	// mapper id is whatever the mapper assigned the hashtag "#event1".
	mappedID, ok := mapper.Lookup("event1")
	if !ok {
		t.Fatal("hashtag for bursty event never seen")
	}
	ranges, err := det.BurstyTimes(mappedID, 200, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) == 0 {
		t.Fatal("planted burst not found end to end")
	}
	for _, r := range ranges {
		if r.End < 19_000 || r.Start > 27_500 {
			t.Fatalf("burst range %+v far from planted window [20000,26000]", r)
		}
	}
}

// TestHawkesEndToEnd verifies the detector finds endogenous (self-excited)
// bursts, not just scheduled ones: the top bursty instants of a Hawkes
// stream must coincide with its densest cascades.
func TestHawkesEndToEnd(t *testing.T) {
	ts, err := workload.HawkesProfileStream(9, 0.85, 300, 30_000, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := histburst.NewSingle(histburst.WithPBE2(2))
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for _, v := range ts {
		s.Append(v)
		oracle.Append(0, v)
	}
	s.Finish()
	tau := int64(2000)
	// Find the densest window in the raw data.
	var bestT int64
	var bestCount int64
	for q := tau; q < 500_000; q += tau / 2 {
		if c := oracle.Curve(0).BurstFrequency(q, tau); c > bestCount {
			bestCount, bestT = c, q
		}
	}
	theta := float64(bestCount) / 3
	ranges, err := s.BurstyTimes(theta, tau, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) == 0 {
		t.Fatal("no bursts found in a Hawkes stream")
	}
	// The densest cascade must be flagged within a couple of spans.
	hit := false
	for _, r := range ranges {
		if r.Start <= bestT+tau && r.End >= bestT-2*tau {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("densest cascade at t=%d not flagged: %v", bestT, ranges)
	}
}

// TestConcurrentReadQueries hammers a finished detector from many
// goroutines; run with -race. (Ingestion is documented as single-threaded;
// queries after Finish are read-only.)
func TestConcurrentReadQueries(t *testing.T) {
	det, err := histburst.New(64, histburst.WithPBE2(4), histburst.WithSketchDims(3, 32))
	if err != nil {
		t.Fatal(err)
	}
	for tm := int64(0); tm < 20_000; tm++ {
		det.Append(uint64(tm%64), tm)
	}
	det.Finish()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := uint64((g*31 + i) % 64)
				q := int64((g*997 + i*13) % 20_000)
				if _, err := det.Burstiness(e, q, 100); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 0 {
					if _, err := det.BurstyTimes(e, 50, 100); err != nil {
						t.Error(err)
						return
					}
					if _, err := det.BurstyEvents(q, 50, 100); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
