package histburst

import (
	"math/rand"
	"testing"
)

// mergeParts builds the same three time-disjoint partition detectors on each
// call so the streaming kernel and the Clone+MergeAppend chain both get
// pristine sources.
func mergeParts(t *testing.T, opts ...Option) []*Detector {
	t.Helper()
	r := rand.New(rand.NewSource(23))
	var elems []Element
	cur := int64(0)
	for i := 0; i < 6000; i++ {
		cur += int64(r.Intn(3))
		elems = append(elems, Element{Event: uint64(r.Intn(128)), Time: cur})
	}
	c1, c2 := len(elems)/3, 2*len(elems)/3
	for c1 < len(elems) && elems[c1].Time == elems[c1-1].Time {
		c1++
	}
	for c2 < len(elems) && (c2 <= c1 || elems[c2].Time == elems[c2-1].Time) {
		c2++
	}
	parts := make([]*Detector, 0, 3)
	for _, p := range [][]Element{elems[:c1], elems[c1:c2], elems[c2:]} {
		det, err := New(128, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, el := range p {
			det.Append(el.Event, el.Time)
		}
		det.Finish()
		parts = append(parts, det)
	}
	return parts
}

// TestMergeDetectorsMatchesMergeAppend pins the streaming detector merge
// bit-identical to the Clone+MergeAppend chain, for both the indexed and the
// index-free configuration.
func TestMergeDetectorsMatchesMergeAppend(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"indexed", []Option{WithSeed(5), WithSketchDims(3, 32), WithPBE2(2)}},
		{"no-index", []Option{WithSeed(5), WithSketchDims(3, 32), WithPBE2(2), WithoutEventIndex()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			parts := mergeParts(t, tc.opts...)
			nBefore := parts[2].N()
			fast, err := MergeDetectors(parts)
			if err != nil {
				t.Fatal(err)
			}
			if parts[2].N() != nBefore {
				t.Fatal("MergeDetectors mutated a source")
			}

			naiveParts := mergeParts(t, tc.opts...)
			naive, err := naiveParts[0].Clone()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range naiveParts[1:] {
				if err := naive.MergeAppend(p); err != nil {
					t.Fatal(err)
				}
			}

			if fast.N() != naive.N() || fast.MaxTime() != naive.MaxTime() ||
				fast.MinTime() != naive.MinTime() || fast.OutOfOrder() != naive.OutOfOrder() {
				t.Fatalf("counters: N %d/%d maxT %d/%d", fast.N(), naive.N(), fast.MaxTime(), naive.MaxTime())
			}
			for e := uint64(0); e < 128; e += 3 {
				for q := int64(0); q <= fast.MaxTime()+10; q += 97 {
					a, err := fast.Burstiness(e, q, 50)
					if err != nil {
						t.Fatal(err)
					}
					b, err := naive.Burstiness(e, q, 50)
					if err != nil {
						t.Fatal(err)
					}
					if a != b {
						t.Fatalf("Burstiness(%d,%d) = %v, MergeAppend chain gives %v", e, q, a, b)
					}
					if fa, fb := fast.CumulativeFrequency(e, q), naive.CumulativeFrequency(e, q); fa != fb {
						t.Fatalf("CumulativeFrequency(%d,%d) = %v vs %v", e, q, fa, fb)
					}
				}
			}
			if tc.name == "indexed" {
				fe, err := fast.BurstyEvents(fast.MaxTime()/2, 10, 50)
				if err != nil {
					t.Fatal(err)
				}
				ne, err := naive.BurstyEvents(naive.MaxTime()/2, 10, 50)
				if err != nil {
					t.Fatal(err)
				}
				if len(fe) != len(ne) {
					t.Fatalf("bursty events %v vs %v", fe, ne)
				}
				for i := range fe {
					if fe[i] != ne[i] {
						t.Fatalf("bursty events %v vs %v", fe, ne)
					}
				}
			}
		})
	}
}

func TestMergeDetectorsValidation(t *testing.T) {
	if _, err := MergeDetectors(nil); err == nil {
		t.Fatal("zero-part merge accepted")
	}
	a, _ := New(64, WithPBE2(2))
	b, _ := New(64, WithPBE2(4))
	if _, err := MergeDetectors([]*Detector{a, b}); err == nil {
		t.Fatal("config mismatch accepted")
	}
	c, _ := New(64, WithPBE1(32, 8))
	d, _ := New(64, WithPBE1(32, 8))
	c.Append(1, 1)
	d.Append(1, 5)
	c.Finish()
	d.Finish()
	if _, err := MergeDetectors([]*Detector{c, d}); err == nil {
		t.Fatal("PBE-1 detectors accepted by streaming merge")
	}
}
