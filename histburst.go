// Package histburst detects bursty events throughout the history of an
// event stream using the persistent burstiness estimation sketches of
// "Bursty Event Detection Throughout Histories" (Paul, Peng, Li — ICDE
// 2019).
//
// Burstiness is the acceleration of an event's incoming rate: with F_e(t)
// the cumulative number of mentions of event e up to time t and τ a burst
// span chosen at query time,
//
//	b_e(t) = F_e(t) − 2·F_e(t−τ) + F_e(t−2τ).
//
// A Detector ingests (event id, timestamp) elements once, in time order,
// and afterwards answers — for any historical instant, without storing the
// stream — the paper's three query types:
//
//	POINT        Burstiness(e, t, τ)          how bursty was e at time t?
//	BURSTY TIME  BurstyTimes(e, θ, τ)         when was e bursty?
//	BURSTY EVENT BurstyEvents(t, θ, τ)        what was bursty at time t?
//
// Internally each event's cumulative-frequency curve is approximated by a
// persistent burstiness estimator — PBE-1 (optimal buffered staircase
// compression) or PBE-2 (online piecewise-linear approximation with error
// cap γ) — sharded across a Count-Min layout (CM-PBE) so the space is
// sublinear in both the stream length and the number of events, plus a
// dyadic decomposition over the event-id space for sub-linear bursty-event
// search. All estimates are approximate with two-sided guarantees; see the
// option docs for the tuning knobs.
package histburst

import (
	"fmt"
	"math/bits"
	"runtime"

	"histburst/internal/cmpbe"
	"histburst/internal/dyadic"
	"histburst/internal/pbe"
)

// TimeRange is a half-open interval [Start, End) of time instants.
type TimeRange struct {
	Start, End int64
}

// Contains reports whether t lies in the range.
func (r TimeRange) Contains(t int64) bool { return t >= r.Start && t < r.End }

// config collects the options for a Detector.
type config struct {
	seed           int64
	d, w           int
	epsilon, delta float64 // set when d == -1 (WithErrorBounds)
	usePBE1        bool
	bufferN        int
	eta            int
	pbe1CapMode    bool  // PBE-1 cells use an error cap instead of a fixed η
	pbe1Cap        int64 // per-chunk area-error cap (pbe1CapMode only)
	gamma          float64
	noIndex        bool
}

// Option configures a Detector.
type Option func(*config)

// WithSeed fixes the hash seed; detectors with equal seeds and options are
// deterministic replicas. The default seed is 1.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithSketchDims sets the Count-Min layout explicitly: d rows, w cells per
// row. The default is d=5, w=272 (≈ ε=0.01, δ=0.01).
func WithSketchDims(d, w int) Option {
	return func(c *config) { c.d, c.w = d, w }
}

// WithErrorBounds sets the Count-Min layout from the standard guarantees:
// the collision term of a frequency estimate stays below ε·N with
// probability 1−δ. d = ⌈ln 1/δ⌉, w = ⌈e/ε⌉.
func WithErrorBounds(epsilon, delta float64) Option {
	return func(c *config) {
		// Deliberately unvalidated here; New validates via cmpbe.
		c.d, c.w = -1, -1
		c.epsilon, c.delta = epsilon, delta
	}
}

// WithPBE1 selects PBE-1 cells: each cell buffers bufferN exact curve
// corners and compresses them to the optimal eta-point staircase (Section
// III-A). PBE-1 gives the best accuracy per byte at the cost of buffering
// during construction.
func WithPBE1(bufferN, eta int) Option {
	return func(c *config) {
		c.usePBE1 = true
		c.bufferN, c.eta = bufferN, eta
	}
}

// WithPBE1ErrorCap selects PBE-1 cells that compress each bufferN-corner
// chunk to the smallest point budget keeping its area error at or below
// cap — the paper's "hard cap on the error instead of a space constraint"
// variant (Section III-A). Space then adapts to the data instead of being
// fixed per chunk.
func WithPBE1ErrorCap(bufferN int, cap int64) Option {
	return func(c *config) {
		c.usePBE1 = true
		c.pbe1CapMode = true
		c.bufferN, c.pbe1Cap = bufferN, cap
		c.eta = 0
	}
}

// WithPBE2 selects PBE-2 cells with error cap gamma: every frequency
// estimate stays within [F−γ, F] and every burstiness estimate within 4γ of
// the truth, per summarized stream (Section III-B). This is the default,
// with γ = 8.
func WithPBE2(gamma float64) Option {
	return func(c *config) {
		c.usePBE1 = false
		c.gamma = gamma
	}
}

// WithoutEventIndex disables the dyadic bursty-event index, saving a factor
// ~log₂(K) of space and ingest work. BurstyEvents then returns an error;
// point and bursty-time queries are unaffected.
func WithoutEventIndex() Option {
	return func(c *config) { c.noIndex = true }
}

// Detector answers historical burstiness queries over a mixed event stream.
// It is not safe for concurrent use; wrap it in a mutex or shard by stream.
type Detector struct {
	k    uint64
	cfg  config       // resolved configuration, kept for serialization
	tree *dyadic.Tree // nil when the event index is disabled
	base baseLevel    // leaf-level summary (tree level 0, or standalone)

	n          int64
	minT       int64
	maxT       int64
	lastT      int64
	started    bool
	outOfOrder int64
}

// baseLevel is what the facade needs from the leaf summary; both
// *cmpbe.Sketch and *cmpbe.Direct provide it.
type baseLevel interface {
	Append(e uint64, t int64)
	Finish()
	EstimateF(e uint64, t int64) float64
	Burstiness(e uint64, t, tau int64) float64
	BurstyTimes(e uint64, theta float64, tau int64) []pbe.TimeRange
	EventCells(e uint64) []pbe.PBE
	AppendEventCells(e uint64, buf []pbe.PBE) []pbe.PBE
	Bytes() int
}

// New creates a Detector over the event-id space [0, k). k is rounded up to
// a power of two for the dyadic index.
func New(k uint64, opts ...Option) (*Detector, error) {
	if k == 0 {
		return nil, fmt.Errorf("histburst: event space must be non-empty")
	}
	c := config{seed: 1, d: 5, w: 272, gamma: 8}
	for _, o := range opts {
		o(&c)
	}
	var factory cmpbe.Factory
	var err error
	switch {
	case c.usePBE1 && c.pbe1CapMode:
		factory, err = cmpbe.PBE1ErrorCapFactory(c.bufferN, c.pbe1Cap)
	case c.usePBE1:
		factory, err = cmpbe.PBE1Factory(c.bufferN, c.eta)
	default:
		factory, err = cmpbe.PBE2Factory(c.gamma)
	}
	if err != nil {
		return nil, fmt.Errorf("histburst: %w", err)
	}
	det := &Detector{k: k}
	if c.d == -1 { // WithErrorBounds path
		probe, err := cmpbe.NewWithError(c.epsilon, c.delta, c.seed, factory)
		if err != nil {
			return nil, fmt.Errorf("histburst: %w", err)
		}
		c.d, c.w = probe.Dims()
		// The bounds are fully expressed by the resolved dimensions; clear
		// them so detectors round-trip through Save/Load (which does not
		// persist them) with configurations that still compare equal for
		// MergeAppend.
		c.epsilon, c.delta = 0, 0
	}
	if c.d <= 0 || c.w <= 0 {
		return nil, fmt.Errorf("histburst: sketch dimensions must be positive, got d=%d w=%d", c.d, c.w)
	}
	det.cfg = c
	levelFactory := dyadic.CMPBELevels(c.d, c.w, c.seed, factory)
	if c.noIndex {
		lvl, err := levelFactory(0, roundPow2(k))
		if err != nil {
			return nil, fmt.Errorf("histburst: %w", err)
		}
		base, ok := lvl.(baseLevel)
		if !ok {
			return nil, fmt.Errorf("histburst: internal error: level type %T lacks query methods", lvl)
		}
		det.base = base
		return det, nil
	}
	tree, err := dyadic.New(k, levelFactory)
	if err != nil {
		return nil, fmt.Errorf("histburst: %w", err)
	}
	base, ok := tree.Level(0).(baseLevel)
	if !ok {
		return nil, fmt.Errorf("histburst: internal error: level type %T lacks query methods", tree.Level(0))
	}
	det.tree = tree
	det.base = base
	return det, nil
}

// K returns the detector's (rounded) event-id space size.
func (d *Detector) K() uint64 { return roundPow2(d.k) }

// SketchParams is the exported, replica-complete description of a PBE-2
// detector's configuration: two detectors built from equal SketchParams are
// deterministic replicas whose time-disjoint partitions MergeAppend cleanly.
// The segmented timeline store persists these in its manifest so recovered
// segments are guaranteed config-compatible with future seals.
type SketchParams struct {
	K       uint64  // event-id space (pre-rounding)
	Seed    int64   // hash seed
	D, W    int     // Count-Min rows × cells
	Gamma   float64 // PBE-2 error cap
	NoIndex bool    // dyadic bursty-event index disabled
}

// Params returns the detector's sketch parameters. ok is false when the
// configuration is not expressible as SketchParams — PBE-1 detectors, whose
// per-partition buffering makes segment-boundary estimate combination lossy
// (a PBE-1 tail estimate is not the exact count the combination relies on).
func (d *Detector) Params() (p SketchParams, ok bool) {
	c := d.cfg
	if c.usePBE1 || c.pbe1CapMode || c.bufferN != 0 || c.eta != 0 || c.pbe1Cap != 0 {
		return SketchParams{}, false
	}
	return SketchParams{K: d.k, Seed: c.seed, D: c.d, W: c.w, Gamma: c.gamma, NoIndex: c.noIndex}, true
}

// NewFromParams builds an empty detector from exported parameters; the
// result is config-compatible (MergeAppend, segment combination) with every
// detector whose Params compare equal. D and W of zero select the library
// default layout.
func NewFromParams(p SketchParams) (*Detector, error) {
	opts := []Option{WithSeed(p.Seed), WithPBE2(p.Gamma)}
	if p.D != 0 || p.W != 0 {
		opts = append(opts, WithSketchDims(p.D, p.W))
	}
	if p.NoIndex {
		opts = append(opts, WithoutEventIndex())
	}
	return New(p.K, opts...)
}

// Append ingests one element. Elements must arrive in non-decreasing time
// order; a timestamp below the frontier is clamped to it and counted in
// OutOfOrder. Event ids at or above K are folded into the space by modulo.
func (d *Detector) Append(e uint64, t int64) {
	if d.started && t < d.lastT {
		d.outOfOrder++
		t = d.lastT
	}
	if !d.started || t < d.minT {
		d.minT = t
	}
	d.lastT = t
	d.started = true
	if d.tree != nil {
		d.tree.Append(e, t) // feeds every level including the base
	} else {
		d.base.Append(e%d.K(), t)
	}
	d.n++
	if t > d.maxT {
		d.maxT = t
	}
}

// Finish flushes internal buffers; call it after the last Append (further
// Appends are allowed and start new buffers). Queries before Finish are
// valid and include all ingested data. Idempotent.
func (d *Detector) Finish() {
	if d.tree != nil {
		d.tree.Finish()
		return
	}
	d.base.Finish()
}

// N returns the number of ingested elements.
func (d *Detector) N() int64 { return d.n }

// MinTime returns the smallest timestamp ingested (zero when empty).
func (d *Detector) MinTime() int64 { return d.minT }

// MaxTime returns the largest timestamp ingested (the stream horizon T).
func (d *Detector) MaxTime() int64 { return d.maxT }

// OutOfOrder returns how many elements were clamped to the time frontier.
func (d *Detector) OutOfOrder() int64 { return d.outOfOrder }

// CumulativeFrequency returns the estimate F̃_e(t) of how many times event e
// was mentioned up to and including time t.
func (d *Detector) CumulativeFrequency(e uint64, t int64) float64 {
	return d.base.EstimateF(e%d.K(), t)
}

// EventCells returns the base-level summary cells event e maps to, one per
// sketch row (a single collision-free cell for small id spaces). This is the
// segment-boundary plumbing used by the segmented timeline store
// (internal/segstore) to combine cumulative estimates of time-partitioned
// detectors row by row before the median; the cells alias the detector's
// internal state and must be treated as read-only.
func (d *Detector) EventCells(e uint64) []pbe.PBE {
	return d.base.EventCells(e % d.K())
}

// AppendEventCells appends e's cells to buf and returns it — the
// buffer-reusing variant of EventCells for callers that walk many
// detectors per query.
//
//histburst:fastpath EventCells
func (d *Detector) AppendEventCells(e uint64, buf []pbe.PBE) []pbe.PBE {
	return d.base.AppendEventCells(e%d.K(), buf)
}

// Burstiness answers the POINT QUERY q(e, t, τ): the estimated acceleration
// of e's incoming rate at time t over burst span tau > 0.
func (d *Detector) Burstiness(e uint64, t, tau int64) (float64, error) {
	if tau <= 0 {
		return 0, fmt.Errorf("histburst: burst span must be positive, got %d", tau)
	}
	return d.base.Burstiness(e%d.K(), t, tau), nil
}

// BurstyTimes answers the BURSTY TIME QUERY q(e, θ, τ): the maximal time
// ranges within [0, MaxTime] where e's estimated burstiness reaches theta.
// Cost is linear in the summary size, not the stream size.
func (d *Detector) BurstyTimes(e uint64, theta float64, tau int64) ([]TimeRange, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("histburst: burst span must be positive, got %d", tau)
	}
	internal := d.base.BurstyTimes(e%d.K(), theta, tau)
	out := make([]TimeRange, len(internal))
	for i, r := range internal {
		out[i] = TimeRange{Start: r.Start, End: r.End}
	}
	return out, nil
}

// parallelSearchMinK is the id-space size from which BurstyEvents fans the
// dyadic search across cores: smaller trees finish in microseconds and would
// only pay goroutine overhead.
const parallelSearchMinK = 1 << 12

// BurstyEvents answers the BURSTY EVENT QUERY q(t, θ, τ): all event ids
// whose estimated burstiness at time t reaches theta (> 0), found by the
// pruned dyadic search — typically O(log K) point queries rather than K. On
// large id spaces the search runs across runtime.GOMAXPROCS(0) goroutines
// when more than one core is available; with GOMAXPROCS=1 the fan-out only
// adds scheduling overhead (a measured ~4% regression), so the search stays
// sequential. The result is identical either way.
func (d *Detector) BurstyEvents(t int64, theta float64, tau int64) ([]uint64, error) {
	if d.tree == nil {
		return nil, fmt.Errorf("histburst: event index disabled (WithoutEventIndex)")
	}
	if tau <= 0 {
		return nil, fmt.Errorf("histburst: burst span must be positive, got %d", tau)
	}
	if procs := runtime.GOMAXPROCS(0); procs >= 2 && d.K() >= parallelSearchMinK {
		return d.tree.BurstyEventsParallel(t, theta, tau, procs, nil)
	}
	return d.tree.BurstyEvents(t, theta, tau, nil)
}

// EventBurstiness pairs an event id with its estimated burstiness.
type EventBurstiness struct {
	Event      uint64
	Burstiness float64
}

// TopBursty returns up to k events with the largest estimated burstiness at
// time t (descending), via best-first search over the dyadic index —
// typically far fewer point queries than ranking all K events. Requires the
// event index.
func (d *Detector) TopBursty(t int64, k int, tau int64) ([]EventBurstiness, error) {
	if d.tree == nil {
		return nil, fmt.Errorf("histburst: event index disabled (WithoutEventIndex)")
	}
	scores, err := d.tree.TopBursty(t, k, tau, nil)
	if err != nil {
		return nil, fmt.Errorf("histburst: %w", err)
	}
	out := make([]EventBurstiness, len(scores))
	for i, s := range scores {
		out[i] = EventBurstiness{Event: s.Event, Burstiness: s.Burstiness}
	}
	return out, nil
}

// Bytes returns the detector's summary footprint in bytes.
func (d *Detector) Bytes() int {
	if d.tree != nil {
		return d.tree.Bytes()
	}
	return d.base.Bytes()
}

func roundPow2(k uint64) uint64 {
	// Branch-free and safe for any input: the old doubling loop never
	// terminated for k > 2⁶³ (reachable only from corrupt files, which
	// Load now rejects, but an infinite loop is the wrong failure mode).
	if k&(k-1) == 0 {
		return k
	}
	return 1 << (64 - bits.LeadingZeros64(k))
}
