package histburst

import (
	"fmt"

	"histburst/internal/cmpbe"
	"histburst/internal/dyadic"
)

// DownsampleDetectors builds a fresh detector summarizing time-disjoint
// parts (ascending time order) at lower fidelity: every sketch cell's PBE-2
// error cap widens to gamma, the time resolution of retained curve detail
// coarsens to res, and the Count-Min width narrows to w. This is the decay
// kernel of the segmented timeline store: as history ages past a tier
// boundary, a run of full-fidelity segments collapses into one segment that
// answers the same queries with a wider — but still two-sided and exactly
// reported — error envelope, in a fraction of the bytes.
//
// Requirements: all parts share their configuration, hold PBE-2 cells, and
// are finished; w must divide the source width W and gamma must be at least
// (W/w)·γ_src, the summed error of the source cells folded into each output
// cell. Total counts are preserved exactly: at and past each part's time
// frontier the downsampled curves report exact cumulative counts, which is
// what lets downsampled segments be downsampled again (tier promotion) or
// merged with equal-fidelity neighbors.
//
// The result's Params report the new gamma and width, so segments built
// from it persist and reload as ordinary (coarser) detectors. Sources are
// never mutated and may keep serving queries during the downsample.
func DownsampleDetectors(parts []*Detector, gamma float64, res int64, w int) (*Detector, error) {
	if len(parts) == 0 || parts[0] == nil {
		return nil, fmt.Errorf("histburst: downsample of zero detectors")
	}
	first := parts[0]
	for _, p := range parts[1:] {
		if p == nil {
			return nil, fmt.Errorf("histburst: cannot downsample nil detector")
		}
		if first.cfg != p.cfg || first.K() != p.K() {
			return nil, fmt.Errorf("histburst: configuration mismatch; partitions must share all options")
		}
	}
	if first.cfg.usePBE1 {
		return nil, fmt.Errorf("histburst: only PBE-2 detectors are downsampleable")
	}
	if w <= 0 {
		w = first.cfg.w
	}
	if first.cfg.w%w != 0 {
		return nil, fmt.Errorf("histburst: target width %d must divide source width %d", w, first.cfg.w)
	}
	if minGamma := float64(first.cfg.w/w) * first.cfg.gamma; gamma < minGamma {
		return nil, fmt.Errorf("histburst: gamma %v below folded source error %v (= %d/%d × %v)",
			gamma, minGamma, first.cfg.w, w, first.cfg.gamma)
	}
	if res < 1 {
		return nil, fmt.Errorf("histburst: resolution must be at least 1, got %d", res)
	}
	out := &Detector{
		k: first.k, cfg: first.cfg,
		n: first.n, minT: first.minT, maxT: first.maxT, lastT: first.lastT,
		started: first.started, outOfOrder: first.outOfOrder,
	}
	out.cfg.gamma = gamma
	out.cfg.w = w
	live := make([]*Detector, 0, len(parts))
	live = append(live, first)
	for _, p := range parts[1:] {
		if p.n == 0 {
			continue // contributes nothing, exactly as MergeDetectors skips it
		}
		if !out.started && p.started {
			out.minT = p.minT
		}
		live = append(live, p)
		out.n += p.n
		if p.maxT > out.maxT {
			out.maxT = p.maxT
		}
		if p.lastT > out.lastT {
			out.lastT = p.lastT
		}
		out.started = out.started || p.started
		out.outOfOrder += p.outOfOrder
	}
	if first.tree != nil {
		trees := make([]*dyadic.Tree, len(live))
		for i, p := range live {
			trees[i] = p.tree
		}
		tree, err := dyadic.DownsampleTrees(trees, gamma, res, w)
		if err != nil {
			return nil, fmt.Errorf("histburst: %w", err)
		}
		base, ok := tree.Level(0).(baseLevel)
		if !ok {
			return nil, fmt.Errorf("histburst: internal error: level type %T lacks query methods", tree.Level(0))
		}
		out.tree = tree
		out.base = base
		return out, nil
	}
	base, err := downsampleBaseMany(live, gamma, res, w)
	if err != nil {
		return nil, fmt.Errorf("histburst: %w", err)
	}
	out.base = base
	return out, nil
}

// downsampleBaseMany streams the standalone (index-free) base levels of the
// detectors into one lower-fidelity summary.
func downsampleBaseMany(parts []*Detector, gamma float64, res int64, w int) (baseLevel, error) {
	switch parts[0].base.(type) {
	case *cmpbe.Sketch:
		srcs := make([]*cmpbe.Sketch, len(parts))
		for i, p := range parts {
			s, ok := p.base.(*cmpbe.Sketch)
			if !ok {
				return nil, fmt.Errorf("base type mismatch: %T vs %T", parts[0].base, p.base)
			}
			srcs[i] = s
		}
		_, lw := srcs[0].Dims()
		target := lw
		if w >= 1 && w <= lw && lw%w == 0 {
			target = w
		}
		return cmpbe.DownsampleSketches(srcs, gamma, res, target)
	case *cmpbe.Direct:
		srcs := make([]*cmpbe.Direct, len(parts))
		for i, p := range parts {
			s, ok := p.base.(*cmpbe.Direct)
			if !ok {
				return nil, fmt.Errorf("base type mismatch: %T vs %T", parts[0].base, p.base)
			}
			srcs[i] = s
		}
		return cmpbe.DownsampleDirects(srcs, gamma, res)
	default:
		return nil, fmt.Errorf("base type %T is not downsampleable", parts[0].base)
	}
}
