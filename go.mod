module histburst

go 1.22
