// Quickstart: ingest a small event stream once, then ask all three
// historical burstiness queries without ever storing the raw stream.
package main

import (
	"fmt"
	"log"

	"histburst"
)

func main() {
	// A detector over an id space of 16 possible events. PBE-2 cells with
	// γ=4: every frequency estimate within 4 of the truth per summarized
	// stream, every burstiness estimate within 16.
	det, err := histburst.New(16, histburst.WithPBE2(4))
	if err != nil {
		log.Fatal(err)
	}

	// Ingest: event 7 ("earthquake") is quiet, then bursts at t≈1000;
	// event 2 ("weather") is frequent but steady — frequent ≠ bursty.
	for t := int64(0); t < 2000; t++ {
		det.Append(2, t) // one weather mention every tick
		if t >= 1000 && t < 1100 {
			for i := 0; i < 8; i++ {
				det.Append(7, t) // the earthquake outbreak
			}
		}
	}
	det.Finish()

	const tau = 100 // burst span: compare adjacent 100-tick windows

	// POINT QUERY: how bursty was each event mid-outbreak?
	b7, err := det.Burstiness(7, 1099, tau)
	if err != nil {
		log.Fatal(err)
	}
	b2, _ := det.Burstiness(2, 1099, tau) //histburst:allow errdrop -- same (t, tau) just validated for event 7 above
	fmt.Printf("burstiness at t=1099: earthquake ≈ %.0f, weather ≈ %.0f\n", b7, b2)

	// BURSTY TIME QUERY: when did the earthquake burst?
	ranges, err := det.BurstyTimes(7, 400, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("earthquake bursty (θ=400): %v\n", ranges)

	// BURSTY EVENT QUERY: what was bursting at t=1099?
	events, err := det.BurstyEvents(1099, 400, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events bursting at t=1099 (θ=400): %v\n", events)

	fmt.Printf("summary size: %d bytes for %d ingested elements\n", det.Bytes(), det.N())
}
