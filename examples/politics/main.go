// Politics: a Figure-13-style burst timeline. Summarize a six-month
// uspolitics-like stream (1,689 events), then — entirely from the summary —
// chart which party's events were bursting week by week.
package main

import (
	"fmt"
	"log"
	"strings"

	"histburst"
	"histburst/internal/workload"
)

func main() {
	const n = 300_000
	spec := workload.USPoliticsSpec(7, n)
	data, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	det, err := histburst.New(workload.USPoliticsK, histburst.WithPBE2(8))
	if err != nil {
		log.Fatal(err)
	}
	for _, el := range data {
		det.Append(el.Event, el.Time)
	}
	det.Finish()
	fmt.Printf("summarized %d tweets (Jun–Nov) into %d KB\n\n", det.N(), det.Bytes()/1024)

	tau := workload.Day
	const theta = 150.0

	fmt.Println("week  Democrat                   Republican")
	weeks := det.MaxTime()/(7*workload.Day) + 1
	for wk := int64(0); wk < weeks; wk++ {
		var dem, rep float64
		for day := int64(0); day < 7; day++ {
			qt := wk*7*workload.Day + day*workload.Day + workload.Day/2
			if qt > det.MaxTime() {
				break
			}
			events, err := det.BurstyEvents(qt, theta, tau)
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range events {
				b, _ := det.Burstiness(e, qt, tau) //histburst:allow errdrop -- same (t, tau) just validated by BurstyEvents above
				if workload.USPoliticsCategory(e) == "Democrat" {
					dem += b
				} else {
					rep += b
				}
			}
		}
		fmt.Printf("%4d  %-25s  %s\n", wk+1, bar(dem, 800), bar(rep, 800))
	}
	fmt.Println("\n(each █ is one unit of weekly burst mass; θ =", theta, ")")
}

// bar renders magnitude v as a proportional text bar, 25 chars max.
func bar(v, unit float64) string {
	n := int(v / unit)
	if n > 25 {
		n = 25
	}
	if n == 0 && v > 0 {
		return "·"
	}
	return strings.Repeat("█", n)
}
