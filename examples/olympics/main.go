// Olympics: the paper's motivating olympicrio analysis. Generate a
// month-long Rio-2016-like stream (864 events), summarize it once, and
// travel back in time: which days was soccer bursty, when did swimming go
// quiet, and what was bursting the evening of the final?
package main

import (
	"fmt"
	"log"

	"histburst"
	"histburst/internal/workload"
)

func main() {
	const n = 300_000
	spec := workload.OlympicRioSpec(1, n)
	data, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	det, err := histburst.New(workload.OlympicRioK, histburst.WithPBE2(8))
	if err != nil {
		log.Fatal(err)
	}
	for _, el := range data {
		det.Append(el.Event, el.Time)
	}
	det.Finish()
	fmt.Printf("summarized %d tweets over 31 days into %d KB\n\n", det.N(), det.Bytes()/1024)

	tau := workload.Day

	// Figure-7 style: daily burstiness of the two featured events.
	fmt.Println("day  soccer-burstiness  swimming-burstiness")
	for day := int64(1); day <= 31; day += 2 {
		bs, err := det.Burstiness(workload.SoccerID, day*workload.Day, tau)
		if err != nil {
			log.Fatal(err)
		}
		bw, _ := det.Burstiness(workload.SwimmingID, day*workload.Day, tau) //histburst:allow errdrop -- same (t, tau) just validated for soccer above
		fmt.Printf("%3d  %17.0f  %19.0f\n", day, bs, bw)
	}

	// BURSTY TIME: find soccer's big moments without scanning the stream.
	fmt.Println("\nsoccer bursty periods (θ = 2000):")
	ranges, err := det.BurstyTimes(workload.SoccerID, 2000, tau)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ranges {
		fmt.Printf("  day %.1f – day %.1f\n",
			float64(r.Start)/float64(workload.Day), float64(r.End)/float64(workload.Day))
	}

	// BURSTY EVENT: what was bursting the evening of the final (day 20)?
	finalEvening := 20*workload.Day + 21*3600
	events, err := det.BurstyEvents(finalEvening, 1500, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbursting on the final's evening (θ = 1500):\n")
	for _, e := range events {
		b, _ := det.Burstiness(e, finalEvening, tau) //histburst:allow errdrop -- same (t, tau) just validated by BurstyEvents above
		name := fmt.Sprintf("event %d", e)
		switch e {
		case workload.SoccerID:
			name = "soccer"
		case workload.SwimmingID:
			name = "swimming"
		}
		fmt.Printf("  %-12s b ≈ %.0f\n", name, b)
	}
}
