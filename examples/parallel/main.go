// Parallel: build the same summary with 1 worker and with GOMAXPROCS
// workers over time-disjoint partitions (paper Section III-A: "parallel
// processing on mutually exclusive time ranges can be leveraged to improve
// system throughput"), then show both answer queries equivalently.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"histburst"
	"histburst/internal/workload"
)

func main() {
	const n = 400_000
	spec := workload.OlympicRioSpec(1, n)
	data, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	elems := make([]histburst.Element, len(data))
	for i, el := range data {
		elems[i] = histburst.Element{Event: el.Event, Time: el.Time}
	}
	opts := []histburst.Option{histburst.WithPBE2(8), histburst.WithSeed(7)}

	build := func(workers int) (*histburst.Detector, time.Duration) {
		start := time.Now()
		det, err := histburst.BuildParallel(workload.OlympicRioK, elems, workers, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return det, time.Since(start)
	}

	seq, seqTime := build(1)
	workers := runtime.GOMAXPROCS(0)
	par, parTime := build(workers)

	fmt.Printf("elements:   %d\n", len(elems))
	fmt.Printf("sequential: %v\n", seqTime)
	fmt.Printf("parallel:   %v (%d workers, %.1fx speedup)\n",
		parTime, workers, float64(seqTime)/float64(parTime))

	// Both summaries answer the same questions with the same guarantees.
	tau := workload.Day
	fmt.Println("\nday  b(soccer) sequential  b(soccer) parallel")
	for day := int64(16); day <= 22; day++ {
		at := day * workload.Day
		a, err := seq.Burstiness(workload.SoccerID, at, tau)
		if err != nil {
			log.Fatal(err)
		}
		b, _ := par.Burstiness(workload.SoccerID, at, tau) //histburst:allow errdrop -- same query just validated on the sequential detector
		fmt.Printf("%3d  %20.0f  %18.0f\n", day, a, b)
	}
	fmt.Printf("\nsizes: sequential %d B, parallel %d B\n", seq.Bytes(), par.Bytes())
}
