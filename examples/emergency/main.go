// Emergency: the introduction's use case — after the fact, reconstruct how
// an emergency developed from a city's information stream. Raw messages
// (with hashtags) flow through the paper's h mapping into event ids and
// into the detector; weeks later an analyst asks exactly when the fire
// broke out, how fast attention accelerated, and what else was bursting.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histburst"
	"histburst/internal/textmap"
)

func main() {
	// The city monitors a fixed set of situation topics by keyword.
	mapper := textmap.NewKeywordMapper()
	fire := mapper.AddEvent("warehouse-fire", "fire", "smoke", "evacuate")
	traffic := mapper.AddEvent("traffic", "traffic", "congestion", "jam")
	outage := mapper.AddEvent("power-outage", "outage", "blackout")
	weather := mapper.AddEvent("weather", "rain", "forecast")

	det, err := histburst.New(mapper.Events(), histburst.WithPBE2(2))
	if err != nil {
		log.Fatal(err)
	}

	// Simulate one day of city chatter at one-second granularity: steady
	// weather/traffic noise; a fire breaks out at 14:10 and attention
	// explodes, dragging traffic with it; a small outage follows.
	rng := rand.New(rand.NewSource(3))
	const fireStart = 14*3600 + 600
	ingest := func(t int64, msg string) {
		for _, e := range mapper.Map(msg) {
			det.Append(e, t)
		}
	}
	for t := int64(0); t < 24*3600; t++ {
		if rng.Intn(20) == 0 {
			ingest(t, "morning rain forecast for the bay")
		}
		if rng.Intn(30) == 0 {
			ingest(t, "usual traffic on 5th avenue")
		}
		if t >= fireStart && t < fireStart+1800 {
			// Mentions ramp up fast after the outbreak.
			rate := int((t - fireStart) / 60)
			for i := 0; i < 1+rate/3; i++ {
				ingest(t, "#fire huge smoke column downtown, evacuate now!")
			}
			if rng.Intn(4) == 0 {
				ingest(t, "roads closed, terrible congestion near the fire")
			}
		}
		if t >= fireStart+2400 && t < fireStart+3000 && rng.Intn(2) == 0 {
			ingest(t, "blackout reported in the warehouse district")
		}
	}
	det.Finish()

	const tau = 600 // ten-minute burst span
	names := map[uint64]string{fire: "warehouse-fire", traffic: "traffic", outage: "power-outage", weather: "weather"}

	// When exactly did the fire event burst?
	ranges, err := det.BurstyTimes(fire, 50, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("warehouse-fire bursty periods (θ=50, τ=10min):")
	for _, r := range ranges {
		fmt.Printf("  %s – %s\n", clock(r.Start), clock(r.End))
	}

	// How did attention accelerate through the first half hour?
	fmt.Println("\nattention acceleration after the outbreak:")
	for _, dt := range []int64{300, 600, 900, 1200, 1500} {
		b, err := det.Burstiness(fire, fireStart+dt, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  +%2dmin  b ≈ %6.0f\n", dt/60, b)
	}

	// What else was bursting while the fire developed?
	at := int64(fireStart + 1500)
	events, err := det.BurstyEvents(at, 20, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbursting at %s (θ=20):\n", clock(at))
	for _, e := range events {
		b, _ := det.Burstiness(e, at, tau) //histburst:allow errdrop -- same (t, tau) just validated by BurstyEvents above
		fmt.Printf("  %-15s b ≈ %.0f\n", names[e], b)
	}
}

func clock(t int64) string {
	return fmt.Sprintf("%02d:%02d:%02d", t/3600, (t/60)%60, t%60)
}
