package histburst

import (
	"math"
	"runtime"
	"testing"

	"histburst/internal/exact"
)

func toElements(data []struct {
	Event uint64
	Time  int64
}) []Element {
	out := make([]Element, len(data))
	for i, d := range data {
		out[i] = Element{Event: d.Event, Time: d.Time}
	}
	return out
}

func streamToElements(t *testing.T, seed int64, k int, horizon int64) []Element {
	t.Helper()
	s := testStream(seed, k, horizon)
	out := make([]Element, len(s))
	for i, el := range s {
		out[i] = Element{Event: el.Event, Time: el.Time}
	}
	return out
}

func TestBuildParallelMatchesSequentialClosely(t *testing.T) {
	elems := streamToElements(t, 51, 64, 4000)
	opts := []Option{WithPBE2(2), WithSketchDims(4, 64), WithSeed(9)}

	seq, err := New(64, opts...)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for _, el := range elems {
		seq.Append(el.Event, el.Time)
		oracle.Append(el.Event, el.Time)
	}
	seq.Finish()

	par, err := BuildParallel(64, elems, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if par.N() != seq.N() || par.MaxTime() != seq.MaxTime() {
		t.Fatalf("counters differ: N %d/%d maxT %d/%d", par.N(), seq.N(), par.MaxTime(), seq.MaxTime())
	}
	// Parallel construction resets PBE windows at partition boundaries so
	// estimates may differ slightly from sequential ones, but both respect
	// the same guarantees; check the parallel result directly against the
	// oracle.
	var sumErr float64
	samples := 0
	for e := uint64(0); e < 64; e += 5 {
		for q := int64(0); q <= 4000; q += 111 {
			b, err := par.Burstiness(e, q, 60)
			if err != nil {
				t.Fatal(err)
			}
			sumErr += math.Abs(b - float64(oracle.Burstiness(e, q, 60)))
			samples++
		}
	}
	if mean := sumErr / float64(samples); mean > 20 {
		t.Fatalf("parallel build mean error %.2f too large", mean)
	}
	// Bursty-event query still finds the planted bursts.
	got, err := par.BurstyEvents(2059, 150, 60)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, e := range got {
		found[e] = true
	}
	if !found[3] {
		t.Fatalf("parallel detector missed planted event 3: %v", got)
	}
}

func TestBuildParallelValidation(t *testing.T) {
	if _, err := BuildParallel(8, nil, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	out, err := BuildParallel(8, nil, 3)
	if err != nil || out == nil || out.N() != 0 {
		t.Errorf("empty input: %v %v", out, err)
	}
	bad := []Element{{1, 10}, {1, 5}}
	if _, err := BuildParallel(8, bad, 2); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestBuildParallelSingleWorker(t *testing.T) {
	elems := streamToElements(t, 53, 16, 500)
	a, err := BuildParallel(16, elems, 1, WithPBE2(2), WithSketchDims(3, 16))
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != int64(len(elems)) {
		t.Fatalf("N = %d, want %d", a.N(), len(elems))
	}
}

func TestMergeAppendConfigMismatch(t *testing.T) {
	a, _ := New(16, WithPBE2(2))
	b, _ := New(16, WithPBE2(3))
	if err := a.MergeAppend(b); err == nil {
		t.Error("gamma mismatch accepted")
	}
	c, _ := New(16, WithPBE2(2), WithSeed(1))
	d, _ := New(16, WithPBE2(2), WithSeed(2))
	if err := c.MergeAppend(d); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.MergeAppend(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergeAppendNoIndexDetectors(t *testing.T) {
	opts := []Option{WithPBE2(2), WithoutEventIndex(), WithSketchDims(3, 16)}
	a, _ := New(16, opts...)
	b, _ := New(16, opts...)
	for tm := int64(0); tm < 500; tm++ {
		a.Append(uint64(tm%16), tm)
	}
	for tm := int64(500); tm < 1000; tm++ {
		b.Append(uint64(tm%16), tm)
	}
	if err := a.MergeAppend(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1000 || a.MaxTime() != 999 {
		t.Fatalf("counters: N=%d maxT=%d", a.N(), a.MaxTime())
	}
	if f := a.CumulativeFrequency(3, 999); math.Abs(f-62.5) > 8 {
		t.Fatalf("F(999) for event 3 = %v, want ≈62", f)
	}
}

func TestPartition(t *testing.T) {
	elems := []Element{{1, 1}, {1, 2}, {1, 2}, {1, 2}, {1, 3}, {1, 4}}
	parts := partition(elems, 3)
	total := 0
	var lastEnd int64 = -1
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatal("empty partition")
		}
		if p[0].Time <= lastEnd {
			t.Fatalf("partition starts at %d, previous ended at %d (timestamp split)", p[0].Time, lastEnd)
		}
		lastEnd = p[len(p)-1].Time
		total += len(p)
	}
	if total != len(elems) {
		t.Fatalf("partitions cover %d of %d", total, len(elems))
	}
	if got := partition(nil, 4); got != nil {
		t.Fatalf("partition(nil) = %v", got)
	}
	if got := partition(elems, 100); len(got) > len(elems) {
		t.Fatal("more partitions than elements")
	}
}

// TestMergeAppendEqualBoundaryRejected pins the boundary contract the
// segment store's compactor depends on: partitions whose ranges merely
// touch (other starts AT the receiver's frontier timestamp) are NOT
// mergeable — PBE pins other's curve one tick before its first arrival,
// which would overlap the receiver — while a strictly later start is.
func TestMergeAppendEqualBoundaryRejected(t *testing.T) {
	opts := []Option{WithPBE2(2), WithSketchDims(3, 32), WithSeed(3)}
	build := func(times ...int64) *Detector {
		d, err := New(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, tm := range times {
			d.Append(1, tm)
		}
		return d
	}
	a := build(1, 2, 10)
	if err := a.MergeAppend(build(10, 11)); err == nil {
		t.Fatal("equal-boundary merge accepted")
	}
	if a.N() != 3 {
		t.Fatalf("failed merge changed the receiver: N=%d", a.N())
	}
	// A strictly later partition merges, and the frontier count is exact.
	if err := a.MergeAppend(build(11, 12)); err != nil {
		t.Fatal(err)
	}
	if a.N() != 5 {
		t.Fatalf("merged N = %d, want 5", a.N())
	}
	if f := a.CumulativeFrequency(1, 12); f != 5 {
		t.Fatalf("frontier frequency = %v, want exact 5", f)
	}
}

// TestMergeAppendEmptyPartitions covers the degenerate shards a splitter
// can produce: merging an empty detector is a no-op, and merging into an
// empty detector adopts the other side wholesale.
func TestMergeAppendEmptyPartitions(t *testing.T) {
	opts := []Option{WithPBE2(2), WithSketchDims(3, 32), WithSeed(3)}
	newDet := func() *Detector {
		d, err := New(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	full := newDet()
	for tm := int64(1); tm <= 8; tm++ {
		full.Append(2, tm)
	}
	if err := full.MergeAppend(newDet()); err != nil {
		t.Fatal(err)
	}
	if full.N() != 8 || full.MaxTime() != 8 {
		t.Fatalf("no-op merge changed state: N=%d maxT=%d", full.N(), full.MaxTime())
	}
	if f := full.CumulativeFrequency(2, 8); f != 8 {
		t.Fatalf("frontier frequency = %v, want exact 8", f)
	}

	adopted := newDet()
	donor := newDet()
	for tm := int64(5); tm <= 9; tm++ {
		donor.Append(3, tm)
	}
	if err := adopted.MergeAppend(donor); err != nil {
		t.Fatal(err)
	}
	if adopted.N() != 5 || adopted.MinTime() != 5 || adopted.MaxTime() != 9 {
		t.Fatalf("adopting merge: N=%d span=[%d,%d]", adopted.N(), adopted.MinTime(), adopted.MaxTime())
	}
	if f := adopted.CumulativeFrequency(3, 9); f != 5 {
		t.Fatalf("adopted frontier frequency = %v, want exact 5", f)
	}

	// Empty into empty stays empty and usable.
	e1, e2 := newDet(), newDet()
	if err := e1.MergeAppend(e2); err != nil {
		t.Fatal(err)
	}
	if e1.N() != 0 {
		t.Fatalf("empty merge N = %d", e1.N())
	}
	e1.Append(1, 3)
	if e1.N() != 1 {
		t.Fatalf("post-merge append lost: N=%d", e1.N())
	}
}

// TestBurstyEventsSequentialOnSingleProc pins the facade's routing fix: with
// GOMAXPROCS=1 the fan-out across goroutines only adds scheduling overhead
// (a measured ~4% regression on the parallel-search benchmark), so even an
// id space at or above parallelSearchMinK must take the sequential search —
// and return the same answer the parallel search gives.
func TestBurstyEventsSequentialOnSingleProc(t *testing.T) {
	k := parallelSearchMinK // large enough that only the GOMAXPROCS guard routes sequential
	elems := streamToElements(t, 77, 256, 3000)
	d, err := New(uint64(k), WithPBE2(2), WithSketchDims(3, 64), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range elems {
		d.Append(el.Event, el.Time)
	}
	d.Finish()

	prev := runtime.GOMAXPROCS(1)
	got, err := d.BurstyEvents(1560, 6, 8)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.tree.BurstyEvents(1560, 6, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.tree.BurstyEventsParallel(1560, 6, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("single-proc facade returned %d events, sequential search %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: facade %d != sequential %d", i, got[i], want[i])
		}
	}
	if len(par) != len(want) {
		t.Fatalf("parallel search returned %d events, sequential %d", len(par), len(want))
	}
	for i := range want {
		if par[i] != want[i] {
			t.Fatalf("event %d: parallel %d != sequential %d", i, par[i], want[i])
		}
	}
}
