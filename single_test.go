package histburst

import (
	"bytes"
	"math"
	"testing"

	"histburst/internal/exact"
)

func TestNewSingleValidation(t *testing.T) {
	if _, err := NewSingle(WithSketchDims(3, 8)); err == nil {
		t.Error("sketch dims accepted")
	}
	if _, err := NewSingle(WithoutEventIndex()); err == nil {
		t.Error("index option accepted")
	}
	if _, err := NewSingle(WithSeed(5)); err == nil {
		t.Error("seed option accepted")
	}
	if _, err := NewSingle(WithPBE2(0.1)); err == nil {
		t.Error("bad gamma accepted")
	}
	if _, err := NewSingle(WithPBE1(5, 10)); err == nil {
		t.Error("bad PBE-1 params accepted")
	}
	if _, err := NewSingle(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func buildSingle(t *testing.T, opts ...Option) (*Single, *exact.Store) {
	t.Helper()
	s, err := NewSingle(opts...)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.New()
	for tm := int64(0); tm < 5000; tm++ {
		mentions := 1
		if tm >= 3000 && tm < 3200 {
			mentions = 8
		}
		for j := 0; j < mentions; j++ {
			s.Append(tm)
			oracle.Append(0, tm)
		}
	}
	s.Finish()
	return s, oracle
}

func TestSingleQueries(t *testing.T) {
	for _, opts := range [][]Option{{WithPBE2(2)}, {WithPBE1(300, 30)}} {
		s, oracle := buildSingle(t, opts...)
		if s.N() != oracle.Len() {
			t.Fatalf("N = %d, want %d", s.N(), oracle.Len())
		}
		var sumErr float64
		n := 0
		for q := int64(0); q < 5000; q += 37 {
			b, err := s.Burstiness(q, 200)
			if err != nil {
				t.Fatal(err)
			}
			sumErr += math.Abs(b - float64(oracle.Burstiness(0, q, 200)))
			n++
		}
		if mean := sumErr / float64(n); mean > 10 {
			t.Fatalf("mean error %.2f too large", mean)
		}
		ranges, err := s.BurstyTimes(500, 200, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranges) == 0 {
			t.Fatal("planted burst not found")
		}
		for _, r := range ranges {
			if r.End < 2950 || r.Start > 3450 {
				t.Fatalf("spurious range %+v", r)
			}
		}
		if _, err := s.Burstiness(10, 0); err == nil {
			t.Error("tau=0 accepted")
		}
		if _, err := s.BurstyTimes(1, -1, 100); err == nil {
			t.Error("negative tau accepted")
		}
		if s.Bytes() <= 0 || s.Bytes() > 8*int(oracle.Len()) {
			t.Fatalf("implausible Bytes %d", s.Bytes())
		}
	}
}

func TestSingleSaveLoad(t *testing.T) {
	for _, opts := range [][]Option{{WithPBE2(2)}, {WithPBE1(300, 30)}} {
		s, _ := buildSingle(t, opts...)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSingle(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != s.N() {
			t.Fatalf("N = %d, want %d", got.N(), s.N())
		}
		for q := int64(0); q < 5100; q += 53 {
			if got.CumulativeFrequency(q) != s.CumulativeFrequency(q) {
				t.Fatalf("estimate differs at %d", q)
			}
		}
		// Appending resumes.
		got.Append(6000)
		got.Finish()
		if got.N() != s.N()+1 {
			t.Fatal("append after load broken")
		}
	}
	if _, err := LoadSingle(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSingleMergeAppend(t *testing.T) {
	a, err := NewSingle(WithPBE2(2))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSingle(WithPBE2(2))
	for tm := int64(0); tm < 1000; tm++ {
		a.Append(tm)
	}
	for tm := int64(1000); tm < 2000; tm++ {
		b.Append(tm)
	}
	if err := a.MergeAppend(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 2000 {
		t.Fatalf("N = %d", a.N())
	}
	if f := a.CumulativeFrequency(1999); math.Abs(f-2000) > 2 {
		t.Fatalf("F(1999) = %v", f)
	}
	c, _ := NewSingle(WithPBE1(300, 30))
	if err := a.MergeAppend(c); err == nil {
		t.Error("estimator mismatch accepted")
	}
	if err := a.MergeAppend(nil); err == nil {
		t.Error("nil accepted")
	}
}
