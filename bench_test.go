// Benchmark harness: one testing.B benchmark per paper table/figure (each
// regenerates its experiment end to end at a reduced scale; run
// cmd/burstbench for the human-readable tables), plus microbenchmarks for
// the core operations' throughput and latency.
package histburst_test

import (
	"math/rand"
	"testing"

	"histburst"
	"histburst/internal/cmpbe"
	"histburst/internal/exact"
	"histburst/internal/experiments"
	"histburst/internal/pbe1"
	"histburst/internal/pbe2"
	"histburst/internal/stream"
	"histburst/internal/workload"
)

// benchConfig keeps each figure bench around a second per iteration.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.004, Queries: 30, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// One benchmark per table/figure of the paper's evaluation (Section VI).

func BenchmarkFig7Characteristics(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8PBE1Parameter(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9PBE2Parameter(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10SpaceAccuracy(b *testing.B)  { benchExperiment(b, "fig10a") }
func BenchmarkFig10CurveSize(b *testing.B)      { benchExperiment(b, "fig10b") }
func BenchmarkFig11CMPBE(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12BurstyEvents(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13Timeline(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkBaselineComparison(b *testing.B)  { benchExperiment(b, "tbl-base") }
func BenchmarkAblationDPvsCHT(b *testing.B)     { benchExperiment(b, "abl-dp") }
func BenchmarkAblationMedianVsMin(b *testing.B) { benchExperiment(b, "abl-med") }
func BenchmarkAblationKleinberg(b *testing.B)   { benchExperiment(b, "abl-klein") }
func BenchmarkAblationPlainCM(b *testing.B)     { benchExperiment(b, "abl-cm") }

// --- Microbenchmarks -----------------------------------------------------

// benchTimestamps builds a reusable duplicate-heavy timestamp sequence.
func benchTimestamps(n int) stream.TimestampSeq {
	r := rand.New(rand.NewSource(42))
	ts := make(stream.TimestampSeq, n)
	cur := int64(0)
	for i := range ts {
		if r.Intn(4) == 0 {
			cur += int64(1 + r.Intn(50))
		}
		ts[i] = cur
	}
	return ts
}

func BenchmarkPBE1Append(b *testing.B) {
	ts := benchTimestamps(b.N)
	p, err := pbe1.New(1500, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Append(ts[i])
	}
	p.Finish()
}

func BenchmarkPBE2Append(b *testing.B) {
	ts := benchTimestamps(b.N)
	p, err := pbe2.New(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Append(ts[i])
	}
	p.Finish()
}

func BenchmarkPBE1Compress(b *testing.B) {
	// The dynamic program on one full buffer (CHT variant): the dominant
	// construction cost of PBE-1.
	ts := benchTimestamps(300_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pbe1.New(1500, 200)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range ts {
			p.Append(t)
		}
		p.Finish()
	}
}

func BenchmarkPBE1Estimate(b *testing.B) {
	p, _ := pbe1.New(1500, 100)
	for _, t := range benchTimestamps(200_000) {
		p.Append(t)
	}
	p.Finish()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Estimate(int64(i % 1_000_000))
	}
	_ = sink
}

func BenchmarkPBE2Estimate(b *testing.B) {
	p, _ := pbe2.New(4)
	for _, t := range benchTimestamps(200_000) {
		p.Append(t)
	}
	p.Finish()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Estimate(int64(i % 1_000_000))
	}
	_ = sink
}

// benchDetector builds a shared detector over a mixed stream.
func benchDetector(b *testing.B, k uint64, n int, opts ...histburst.Option) (*histburst.Detector, stream.Stream) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	data := make(stream.Stream, n)
	cur := int64(0)
	for i := range data {
		cur += int64(r.Intn(3))
		data[i] = stream.Element{Event: uint64(r.Intn(int(k))), Time: cur}
	}
	det, err := histburst.New(k, opts...)
	if err != nil {
		b.Fatal(err)
	}
	for _, el := range data {
		det.Append(el.Event, el.Time)
	}
	det.Finish()
	return det, data
}

func BenchmarkDetectorAppend(b *testing.B) {
	det, err := histburst.New(1024, histburst.WithPBE2(8))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	events := make([]uint64, b.N)
	times := make([]int64, b.N)
	cur := int64(0)
	for i := 0; i < b.N; i++ {
		cur += int64(r.Intn(3))
		events[i], times[i] = uint64(r.Intn(1024)), cur
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Append(events[i], times[i])
	}
}

func BenchmarkDetectorAppendNoIndex(b *testing.B) {
	det, err := histburst.New(1024, histburst.WithPBE2(8), histburst.WithoutEventIndex())
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	events := make([]uint64, b.N)
	times := make([]int64, b.N)
	cur := int64(0)
	for i := 0; i < b.N; i++ {
		cur += int64(r.Intn(3))
		events[i], times[i] = uint64(r.Intn(1024)), cur
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Append(events[i], times[i])
	}
}

func BenchmarkPointQuery(b *testing.B) {
	det, _ := benchDetector(b, 256, 100_000, histburst.WithPBE2(8))
	horizon := det.MaxTime()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := det.Burstiness(uint64(i%256), int64(i)%horizon, 1000)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

func BenchmarkBurstyTimeQuery(b *testing.B) {
	det, _ := benchDetector(b, 64, 100_000, histburst.WithPBE2(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.BurstyTimes(uint64(i%64), 50, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBurstyEventQuery(b *testing.B) {
	det, _ := benchDetector(b, 1024, 100_000, histburst.WithPBE2(8))
	horizon := det.MaxTime()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.BurstyEvents(int64(i)%horizon, 100, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactBaselinePointQuery(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	st := exact.New()
	cur := int64(0)
	for i := 0; i < 100_000; i++ {
		cur += int64(r.Intn(3))
		st.Append(uint64(r.Intn(256)), cur)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += st.Burstiness(uint64(i%256), int64(i)%st.MaxTime(), 1000)
	}
	_ = sink
}

func BenchmarkCMPBEInsert(b *testing.B) {
	f, err := cmpbe.PBE2Factory(8)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := cmpbe.New(4, 272, 1, f)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	cur := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur += int64(r.Intn(2))
		sk.Append(uint64(r.Intn(4096)), cur)
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := workload.Generate(workload.OlympicRioSpec(int64(i), 50_000))
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty stream")
		}
	}
}
