package histburst_test

import (
	"bytes"
	"fmt"
	"log"

	"histburst"
)

// ExampleDetector demonstrates the three query types of the paper on a
// small stream: a steady "weather" event and an "earthquake" event that
// bursts at t=1000.
func ExampleDetector() {
	det, err := histburst.New(16, histburst.WithPBE2(1))
	if err != nil {
		log.Fatal(err)
	}
	for t := int64(0); t < 2000; t++ {
		det.Append(2, t) // weather: one mention every tick, steady
		if t >= 1000 && t < 1100 {
			for i := 0; i < 8; i++ {
				det.Append(7, t) // earthquake: a sharp outbreak
			}
		}
	}
	det.Finish()

	b7, _ := det.Burstiness(7, 1099, 100)
	b2, _ := det.Burstiness(2, 1099, 100)
	fmt.Printf("earthquake b=%.0f, weather b=%.0f\n", b7, b2)

	events, _ := det.BurstyEvents(1099, 400, 100)
	fmt.Printf("bursting: %v\n", events)

	// Output:
	// earthquake b=800, weather b=0
	// bursting: [7]
}

// ExampleSingle tracks one event with the lighter single-stream summary
// and persists it.
func ExampleSingle() {
	s, err := histburst.NewSingle(histburst.WithPBE2(1))
	if err != nil {
		log.Fatal(err)
	}
	for t := int64(0); t < 500; t++ {
		s.Append(t) // steady rate: no burst
	}
	s.Finish()
	b, _ := s.Burstiness(400, 100)
	fmt.Printf("steady stream burstiness ≈ %.0f\n", b)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := histburst.LoadSingle(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d arrivals\n", restored.N())

	// Output:
	// steady stream burstiness ≈ 0
	// restored 500 arrivals
}

// ExampleBuildParallel summarizes a bulk load on several goroutines; the
// result answers queries like a sequentially built detector.
func ExampleBuildParallel() {
	var elems []histburst.Element
	for t := int64(0); t < 3000; t++ {
		elems = append(elems, histburst.Element{Event: uint64(t % 4), Time: t})
	}
	det, err := histburst.BuildParallel(4, elems, 4, histburst.WithPBE2(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d elements across 4 events\n", det.N())
	f := det.CumulativeFrequency(1, 2999)
	fmt.Printf("F_1(2999) ≈ %.0f\n", f)

	// Output:
	// ingested 3000 elements across 4 events
	// F_1(2999) ≈ 750
}
