// Command benchjson converts `go test -bench` text output (on stdin) into a
// machine-readable JSON record, deriving speedup ratios for benchmark pairs
// that follow the repo's naming conventions: Foo vs FooNaive (an
// unoptimized reference implementation kept alive for exactly this
// comparison) and FooParallel vs FooSequential.
//
// Pinned baselines from before a change existed in the tree can be supplied
// with -pin: `-pin BenchmarkSketchBurstiness=480.3` adds a speedup entry of
// the measured benchmark against that fixed ns/op value.
//
// A committed record from an earlier run can be supplied with -baseline
// FILE: every measured benchmark also present in the record gains a
// baseline_diffs entry (ns/op, B/op and allocs/op side by side), and the
// exit status turns non-zero when any common benchmark's ns/op regressed by
// more than -max-regress percent — the regression gate `make bench-smoke`
// runs in CI.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json -pin Name=ns
//	go test -bench . -benchmem ./... | benchjson -baseline BENCH_PR4.json -max-regress 25 -o /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric families beyond the three
	// standard columns — e.g. the retained-bytes footprint rows the decay
	// benchmarks emit (unit "retained-bytes", one sub-benchmark per tier
	// policy). Keyed by the metric's unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type speedup struct {
	Name            string  `json:"name"`
	Baseline        string  `json:"baseline"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// baselineDiff compares one benchmark against the same benchmark in a
// committed record. Speedup > 1 means the measured run is faster.
type baselineDiff struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	BaselineNs     float64 `json:"baseline_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	BaselineBytes  int64   `json:"baseline_bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BaselineAllocs int64   `json:"baseline_allocs_per_op"`
}

type report struct {
	GOOS          string         `json:"goos,omitempty"`
	GOARCH        string         `json:"goarch,omitempty"`
	CPU           string         `json:"cpu,omitempty"`
	Benchmarks    []benchResult  `json:"benchmarks"`
	Speedups      []speedup      `json:"speedups,omitempty"`
	BaselineFile  string         `json:"baseline_file,omitempty"`
	BaselineDiffs []baselineDiff `json:"baseline_diffs,omitempty"`
	Notes         []string       `json:"notes,omitempty"`
}

// benchLine matches one result row; -benchmem columns are optional.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

type pinList map[string]float64

func (p pinList) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p pinList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want Name=ns, got %q", s)
	}
	ns, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	p[name] = ns
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	pins := pinList{}
	flag.Var(pins, "pin", "pinned baseline Name=ns_per_op (repeatable)")
	note := flag.String("note", "", "free-form note to embed in the report")
	baseline := flag.String("baseline", "", "committed BENCH_*.json record to diff against")
	maxRegress := flag.Float64("max-regress", 0, "fail when a benchmark's ns/op exceeds its -baseline entry by more than this percent (0 = report only)")
	flag.Parse()

	var rep report
	if *note != "" {
		rep.Notes = append(rep.Notes, *note)
	}
	byName := map[string]*benchResult{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := benchResult{Name: m[1]}
		// benchLine only matches decimal-digit groups, so the parses below can
		// fail solely on >63-bit overflow, which no go test output produces.
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64) //histburst:allow errdrop -- regex guarantees decimal digits
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64) //histburst:allow errdrop -- regex guarantees a float literal
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)  //histburst:allow errdrop -- regex guarantees decimal digits
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64) //histburst:allow errdrop -- regex guarantees decimal digits
		}
		// Custom b.ReportMetric families ride the same row as extra
		// "<value> <unit>" pairs between ns/op and the -benchmem columns —
		// which also pushes B/op out of the regex's optional group, so this
		// scan re-captures the -benchmem columns alongside the custom units.
		fields := strings.Fields(line)
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // past the metric columns (e.g. trailing annotations)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op": // already captured by the regex
			case "B/op":
				r.BytesPerOp = int64(val)
			case "allocs/op":
				r.AllocsPerOp = int64(val)
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = val
			}
		}
		// A repeated name (go test -count N) keeps the fastest run: the
		// minimum is the least-noise estimate of a benchmark's true cost,
		// which is what a regression gate on a shared box needs.
		if prev, ok := byName[r.Name]; ok {
			if r.NsPerOp < prev.NsPerOp {
				*prev = r
			}
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		byName[r.Name] = &rep.Benchmarks[len(rep.Benchmarks)-1]
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, r := range rep.Benchmarks {
		if base, ok := byName[r.Name+"Naive"]; ok {
			rep.Speedups = append(rep.Speedups, mkSpeedup(r.Name, base.Name, r.NsPerOp, base.NsPerOp))
		}
		if strings.HasSuffix(r.Name, "Parallel") {
			seq := strings.TrimSuffix(r.Name, "Parallel") + "Sequential"
			if base, ok := byName[seq]; ok {
				rep.Speedups = append(rep.Speedups, mkSpeedup(r.Name, base.Name, r.NsPerOp, base.NsPerOp))
			}
		}
		if ns, ok := pins[r.Name]; ok {
			rep.Speedups = append(rep.Speedups, mkSpeedup(r.Name, "pinned", r.NsPerOp, ns))
		}
	}
	regressed := false
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.BaselineFile = *baseline
		for _, r := range rep.Benchmarks {
			b, ok := base[r.Name]
			if !ok {
				continue // new benchmark, nothing to diff against
			}
			d := baselineDiff{
				Name: r.Name, NsPerOp: r.NsPerOp, BaselineNs: b.NsPerOp,
				BytesPerOp: r.BytesPerOp, BaselineBytes: b.BytesPerOp,
				AllocsPerOp: r.AllocsPerOp, BaselineAllocs: b.AllocsPerOp,
			}
			if r.NsPerOp > 0 {
				d.Speedup = b.NsPerOp / r.NsPerOp
			}
			rep.BaselineDiffs = append(rep.BaselineDiffs, d)
			if *maxRegress > 0 && b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+*maxRegress/100) {
				regressed = true
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f ns/op vs baseline %.1f ns/op (+%.0f%%, limit %.0f%%)\n",
					r.Name, r.NsPerOp, b.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), *maxRegress)
			}
		}
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if regressed {
		os.Exit(1)
	}
}

// loadBaseline reads a committed benchjson record and indexes it by name.
func loadBaseline(path string) (map[string]benchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	base := make(map[string]benchResult, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		base[b.Name] = b
	}
	return base, nil
}

func mkSpeedup(name, baseline string, ns, baseNs float64) speedup {
	s := speedup{Name: name, Baseline: baseline, NsPerOp: ns, BaselineNsPerOp: baseNs}
	if ns > 0 {
		s.Speedup = baseNs / ns
	}
	return s
}
