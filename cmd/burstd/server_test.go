package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// liveServer builds an empty live-ingest server (no demo stream) with
// snapshots in a temp dir and returns it plus its test HTTP frontend.
func liveServer(t *testing.T, snapDir string) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(serverOpts{K: 64, Gamma: 2, Seed: 1, SnapDir: snapDir, Retain: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postAppend(t *testing.T, url string, elements string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/append", "application/json",
		bytes.NewBufferString(`{"elements":[`+elements+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode append response: %v", err)
	}
	return resp.StatusCode, out
}

func TestAppendEndpoint(t *testing.T) {
	_, ts := liveServer(t, "")
	code, out := postAppend(t, ts.URL, `{"event":3,"time":100},{"event":3,"time":200}`)
	if code != 200 || out["appended"].(float64) != 2 || out["elements"].(float64) != 2 {
		t.Fatalf("append: code=%d out=%v", code, out)
	}
	// The appended data is immediately queryable — and exactly, since it is
	// still head-resident: b(200) = F(200) − 2F(150) + F(100) = 2 − 2 + 1.
	resp, err := http.Get(ts.URL + "/v1/burstiness?e=3&t=200&tau=50")
	if err != nil {
		t.Fatal(err)
	}
	var q map[string]any
	json.NewDecoder(resp.Body).Decode(&q) //nolint:errcheck
	resp.Body.Close()
	if q["burstiness"].(float64) <= 0 {
		t.Fatalf("appended burst invisible: %v", q)
	}
	// Malformed and empty bodies are 400s.
	if code, _ := postAppend(t, ts.URL, ``); code != 400 {
		t.Fatalf("empty batch: code=%d", code)
	}
	resp2, err := http.Post(ts.URL+"/v1/append", "application/json", bytes.NewBufferString("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("garbage body: code=%d", resp2.StatusCode)
	}
}

// TestConcurrentAppendAndQuery hammers ingest and every query endpoint at
// once; run under -race this is the server's central thread-safety proof.
func TestConcurrentAppendAndQuery(t *testing.T) {
	_, ts := liveServer(t, "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tm := int64(w*1000 + i*10)
				code, _ := postAppend(t, ts.URL, fmt.Sprintf(`{"event":%d,"time":%d}`, w, tm))
				if code != 200 {
					t.Errorf("append code %d", code)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			urls := []string{
				"/v1/burstiness?e=1&t=500&tau=100",
				"/v1/times?e=1&theta=1&tau=100",
				"/v1/events?t=500&theta=1&tau=100",
				"/v1/top?t=500&k=3&tau=100",
				"/v1/stats",
			}
			for i := 0; i < 25; i++ {
				resp, err := http.Get(ts.URL + urls[i%len(urls)])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s: code %d", urls[i%len(urls)], resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, ts := liveServer(t, dir)
	if code, _ := postAppend(t, ts.URL, `{"event":5,"time":100},{"event":5,"time":150}`); code != 200 {
		t.Fatalf("append failed: %d", code)
	}
	name, err := srv.checkpoint(false)
	if err != nil || name == "" {
		t.Fatalf("checkpoint: name=%q err=%v", name, err)
	}
	// Nothing appended since: the next periodic checkpoint is skipped.
	if name, err := srv.checkpoint(false); err != nil || name != "" {
		t.Fatalf("no-op checkpoint wrote %q err=%v", name, err)
	}
	// A forced (shutdown) checkpoint always writes.
	if name, err := srv.checkpoint(true); err != nil || name == "" {
		t.Fatalf("forced checkpoint: name=%q err=%v", name, err)
	}

	// A fresh server over the same directory recovers the ingested data
	// from the store manifest.
	srv2, err := newServer(serverOpts{K: 64, Gamma: 2, Seed: 1, SnapDir: dir, Retain: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.store.N() != 2 {
		t.Fatalf("recovered N = %d, want 2", srv2.store.N())
	}
	b, err := srv2.store.Burstiness(5, 150, 100)
	if err != nil || b <= 0 {
		t.Fatalf("recovered burstiness = %v err=%v", b, err)
	}
	if err := srv2.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRetention covers the legacy snapshot layer that survives only
// as the migration source: retention and newest-first ordering still hold
// for directories written by older versions.
func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := openSnapStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, snap := buildSnapshotBytes(t, 2)
	for i := 0; i < 7; i++ {
		if _, err := st.write(snap); err != nil {
			t.Fatal(err)
		}
	}
	names, err := st.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("retained %d snapshots, want 3: %v", len(names), names)
	}
	// Newest-first ordering, and the sequence survives reopening.
	if names[0] <= names[1] {
		t.Fatalf("not newest-first: %v", names)
	}
	st2, err := openSnapStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st2.seq != 7 {
		t.Fatalf("reopened seq = %d, want 7", st2.seq)
	}
}

func TestReadyzAndShutdownRefusesAppends(t *testing.T) {
	srv, ts := liveServer(t, "")
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: code %d", probe, resp.StatusCode)
		}
	}
	srv.ready.Store(false) // draining
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz while draining: code %d", resp.StatusCode)
	}
	if code, _ := postAppend(t, ts.URL, `{"event":1,"time":1}`); code != 503 {
		t.Fatalf("append while draining: code %d", code)
	}
	// healthz stays 200: the process is alive, just not accepting work.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("healthz while draining: code %d", resp2.StatusCode)
	}
}

func TestLoadSheddingReturns503(t *testing.T) {
	srv := &server{inflight: make(chan struct{}, 1), logf: t.Logf}
	block := make(chan struct{})
	entered := make(chan struct{})
	h := srv.limit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(block)

	go http.Get(ts.URL) //nolint:errcheck
	<-entered           // the one slot is now held
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("second request: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After hint")
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := &server{logf: t.Logf}
	h := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("code %d, want 500", resp.StatusCode)
	}
}
