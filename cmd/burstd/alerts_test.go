package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/subscribe"
)

// sseMsg is one parsed server-sent event.
type sseMsg struct {
	event string
	data  string
}

// sseStream opens an alert stream and feeds its parsed events into the
// returned channel; the stream is torn down with the test. Do returns once
// the preamble is written, so the subscription is attached — alerts fired
// after this call cannot be missed.
func sseStream(t *testing.T, url string) <-chan sseMsg {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("alert stream: %s, Content-Type %q", resp.Status, resp.Header.Get("Content-Type"))
	}
	ch := make(chan sseMsg, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var ev string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ch <- sseMsg{event: ev, data: strings.TrimPrefix(line, "data: ")}
				ev = ""
			}
		}
	}()
	return ch
}

// nextSSEAlert waits for the next alert event on an SSE stream.
func nextSSEAlert(t *testing.T, ch <-chan sseMsg) subscribe.Alert {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("SSE stream closed before the alert arrived")
		}
		if m.event != "alert" {
			t.Fatalf("SSE event %q (%s), want alert", m.event, m.data)
		}
		var a subscribe.Alert
		if err := json.Unmarshal([]byte(m.data), &a); err != nil {
			t.Fatalf("SSE alert payload %q: %v", m.data, err)
		}
		return a
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE alert within 10s")
	}
	return subscribe.Alert{}
}

// recvAlert waits for an alert on a plain channel (the webhook receiver).
func recvAlert(t *testing.T, ch <-chan subscribe.Alert, what string) subscribe.Alert {
	t.Helper()
	select {
	case a := <-ch:
		return a
	case <-time.After(10 * time.Second):
		t.Fatalf("no %s alert within 10s", what)
	}
	return subscribe.Alert{}
}

// popWireAlert drains one unsolicited ALERT frame from a wire client.
func popWireAlert(t *testing.T, q *subscribe.Queue) subscribe.Alert {
	t.Helper()
	stop := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() { close(stop) })
	defer timer.Stop()
	a, ok := q.Pop(stop)
	if !ok {
		t.Fatal("no wire alert arrived (queue closed or timeout)")
	}
	return a
}

// postSubscription registers a standing query over HTTP and returns its id.
func postSubscription(t *testing.T, base, body string) uint64 {
	t.Helper()
	resp, err := http.Post(base+"/v1/subscriptions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || out.ID == 0 {
		t.Fatalf("register: %s, id %d", resp.Status, out.ID)
	}
	return out.ID
}

// TestAlertThreeChannels is the end-to-end acceptance path: two standing
// queries share one event but differ in θ, and each fires independently —
// over webhook + SSE for the HTTP-registered one, over an unsolicited wire
// ALERT frame for the connection-scoped one — within the very commit batch
// that crossed its threshold. The sustained burst between edges never
// re-fires, and after the dedup window a fresh burst does.
func TestAlertThreeChannels(t *testing.T) {
	srv, err := newServer(serverOpts{K: 64, Gamma: 2, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hooked := make(chan subscribe.Alert, 16)
	wh := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var a subscribe.Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		hooked <- a
	}))
	t.Cleanup(wh.Close)
	t.Cleanup(srv.closeAlerts) // before wh.Close: the webhook workers drain out first
	ts, wc := bothTransports(t, srv)

	id1 := postSubscription(t, ts.URL, fmt.Sprintf(
		`{"events":[7],"theta":4,"tau":100,"dedup":1000,"webhook":%q}`, wh.URL))
	sse := sseStream(t, fmt.Sprintf("%s/v1/alerts/stream?ids=%d", ts.URL, id1))
	id2, err := wc.Subscribe(subscribe.Subscription{Events: []uint64{7}, Theta: 12, Tau: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Alerts().Stats().Armed; got != 2 {
		t.Fatalf("armed = %d, want 2", got)
	}

	// Burst 1: six occurrences cross θ=4 but not θ=12 — only id1 fires.
	code, out := postAppend(t, ts.URL,
		`{"event":7,"time":100},{"event":7,"time":101},{"event":7,"time":102},`+
			`{"event":7,"time":103},{"event":7,"time":104},{"event":7,"time":105}`)
	if code != 200 || out["appended"].(float64) != 6 {
		t.Fatalf("append: %d %v", code, out)
	}
	a := nextSSEAlert(t, sse)
	if a.Sub != id1 || a.Event != 7 || a.Time != 105 || a.Burstiness < 4 {
		t.Fatalf("SSE alert = %+v", a)
	}
	w := recvAlert(t, hooked, "webhook")
	if w.Sub != id1 || w.Time != 105 {
		t.Fatalf("webhook alert = %+v", w)
	}
	// Evaluation is synchronous with the append ack, so the fire counter is
	// already settled: exactly one alert, i.e. the wire subscription stayed
	// silent below its threshold.
	if got := srv.Alerts().Stats().Fired; got != 1 {
		t.Fatalf("fired = %d after burst 1, want 1", got)
	}

	// Burst 2 sustains id1 (no re-fire) and lifts the count past θ=12: the
	// wire subscription's rising edge.
	var parts []string
	for i := 0; i < 10; i++ {
		parts = append(parts, fmt.Sprintf(`{"event":7,"time":%d}`, 106+i))
	}
	if code, _ := postAppend(t, ts.URL, strings.Join(parts, ",")); code != 200 {
		t.Fatalf("append burst 2: %d", code)
	}
	wa := popWireAlert(t, wc.Alerts())
	if wa.Sub != id2 || wa.Event != 7 || wa.Time != 115 || wa.Burstiness < 12 {
		t.Fatalf("wire alert = %+v", wa)
	}
	if got := srv.Alerts().Stats().Fired; got != 2 {
		t.Fatalf("fired = %d after burst 2, want 2 (sustained burst re-fired)", got)
	}

	// Quiet gap past the dedup window, then a fresh burst: id1's edge
	// re-armed and 3006−105 ≥ dedup, so it fires again; θ=12 stays quiet.
	if code, _ := postAppend(t, ts.URL, `{"event":7,"time":3000}`); code != 200 {
		t.Fatal("lone element refused")
	}
	parts = parts[:0]
	for i := 0; i < 6; i++ {
		parts = append(parts, fmt.Sprintf(`{"event":7,"time":%d}`, 3001+i))
	}
	if code, _ := postAppend(t, ts.URL, strings.Join(parts, ",")); code != 200 {
		t.Fatal("append burst 3 refused")
	}
	a2 := nextSSEAlert(t, sse)
	if a2.Sub != id1 || a2.Time != 3006 {
		t.Fatalf("re-fire SSE alert = %+v", a2)
	}
	w2 := recvAlert(t, hooked, "webhook")
	if w2.Sub != id1 || w2.Time != 3006 {
		t.Fatalf("re-fire webhook alert = %+v", w2)
	}
	if got := srv.Alerts().Stats().Fired; got != 3 {
		t.Fatalf("fired = %d at end, want 3", got)
	}
}

// TestAlertCarriesDegradedEnvelope pins the degraded-mode contract on the
// push path: with a quarantined segment below the alert time, the alert
// carries the same γ/quarantine envelope a query would.
func TestAlertCarriesDegradedEnvelope(t *testing.T) {
	dir := t.TempDir()
	st, err := segstore.Open(dir, segstore.Config{K: 64, Gamma: 2, Seed: 1, SealEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := st.Append(uint64(i%4), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(true); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segs[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := liveServer(t, dir)
	t.Cleanup(srv.closeAlerts)
	_, wc := bothTransports(t, srv)
	if _, err := wc.Subscribe(subscribe.Subscription{Events: []uint64{2}, Theta: 4, Tau: 50}); err != nil {
		t.Fatal(err)
	}
	var batch []string
	for i := 0; i < 6; i++ {
		batch = append(batch, fmt.Sprintf(`{"event":2,"time":%d}`, 100+i))
	}
	if code, out := postAppend(t, ts.URL, strings.Join(batch, ",")); code != 200 {
		t.Fatalf("append: %d %v", code, out)
	}
	a := popWireAlert(t, wc.Alerts())
	if a.Envelope == nil || !a.Envelope.Degraded {
		t.Fatalf("degraded-mode alert carries no quarantine envelope: %+v", a)
	}
	if a.Envelope.Gamma != 2 || a.Envelope.MissingElements == 0 {
		t.Fatalf("envelope = %+v", a.Envelope)
	}
}

// TestSubscriptionHTTPLifecycle covers the registry endpoints end to end.
func TestSubscriptionHTTPLifecycle(t *testing.T) {
	srv, ts := liveServer(t, "")
	t.Cleanup(srv.closeAlerts)

	id := postSubscription(t, ts.URL, `{"events":[65,2],"theta":3,"tau":60}`)
	var list struct {
		Subscriptions []subscribe.Subscription `json:"subscriptions"`
	}
	if code := getJSON(t, ts.URL+"/v1/subscriptions", &list); code != 200 {
		t.Fatalf("list: %d", code)
	}
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != id {
		t.Fatalf("list = %+v", list)
	}
	// Event 65 folded into the K=64 id space and the set came back sorted.
	if got := list.Subscriptions[0].Events; len(got) != 2 || got[0] != 65%64 || got[1] != 2 {
		t.Fatalf("folded events = %v", got)
	}

	// The armed count and channel stats surface on the health and segment
	// endpoints.
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	al, ok := health["alerts"].(map[string]any)
	if !ok || al["armed"].(float64) != 1 {
		t.Fatalf("healthz alerts = %v", health["alerts"])
	}
	var segsOut map[string]any
	if code := getJSON(t, ts.URL+"/v1/segments", &segsOut); code != 200 {
		t.Fatalf("segments: %d", code)
	}
	if _, ok := segsOut["alerts"].(map[string]any); !ok {
		t.Fatalf("segments response carries no alerts block: %v", segsOut)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %s", resp.Status)
	}
	if got := srv.Alerts().Stats().Armed; got != 0 {
		t.Fatalf("armed = %d after delete", got)
	}
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %s, want 404", resp.Status)
	}

	// Validation errors answer 400: junk body, empty event set, bad webhook.
	for _, body := range []string{`{`, `{"events":[],"theta":1,"tau":5}`, `{"events":[1],"theta":1,"tau":5,"webhook":"not a url"}`} {
		resp, err := http.Post(ts.URL+"/v1/subscriptions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: %s, want 400", body, resp.Status)
		}
	}
}

// TestStalledSSESubscriberDoesNotBlockIngest opens an alert stream and never
// reads it while alerts flood out. The subscriber's bounded queue must
// drop-oldest — ingest keeps acking and the hub keeps firing.
func TestStalledSSESubscriberDoesNotBlockIngest(t *testing.T) {
	srv, ts := liveServer(t, "")
	t.Cleanup(srv.closeAlerts)
	var events []string
	for e := 0; e < 16; e++ {
		events = append(events, fmt.Sprintf("%d", e))
	}
	postSubscription(t, ts.URL, `{"events":[`+strings.Join(events, ",")+`],"theta":1,"tau":10}`)

	// Attach the stream, read the preamble headers, then stall forever.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	// A second subscriber whose consumer never pops at all: its bounded
	// queue must shed the flood as drop-oldest, visible in the stats.
	stuck := srv.Alerts().AttachAll(subscribe.ChannelSSE, 4)
	defer srv.Alerts().Detach(stuck)

	// 200 batches, each far enough past the last that every window decays
	// and all 16 events re-fire: 3200 alerts against a queue of 256.
	tbase := int64(1000)
	for batch := 0; batch < 200; batch++ {
		var parts []string
		for j := 0; j < 2; j++ {
			for e := 0; e < 16; e++ {
				parts = append(parts, fmt.Sprintf(`{"event":%d,"time":%d}`, e, tbase+int64(j)))
			}
		}
		code, out := postAppend(t, ts.URL, strings.Join(parts, ","))
		if code != 200 || out["appended"].(float64) != 32 {
			t.Fatalf("batch %d with a stalled subscriber: %d %v", batch, code, out)
		}
		tbase += 100 // > 2τ: the windows decay and the edges re-arm
	}
	st := srv.Alerts().Stats()
	if st.Fired < 3000 {
		t.Fatalf("fired = %d, want ~3200", st.Fired)
	}
	sse := st.Channels[subscribe.ChannelSSE]
	if sse.Dropped < 3000 {
		t.Fatalf("stuck queue shed %d alerts, want ~3196: %+v", sse.Dropped, sse)
	}
	if stuck.Len() > 4 {
		t.Fatalf("stuck queue depth %d exceeds its cap 4", stuck.Len())
	}
}

// TestSSEGapRendering pins the wire format of a dropped-alert gap marker.
func TestSSEGapRendering(t *testing.T) {
	a := subscribe.Alert{Seq: 5, Sub: 2, Event: 7, Time: 100, Burstiness: 6, Theta: 4, Tau: 60, Gap: 3}
	out := string(sseEvent(a))
	if !strings.HasPrefix(out, "event: gap\ndata: {\"dropped\":3}\n\n") {
		t.Fatalf("gap marker missing or malformed:\n%s", out)
	}
	rest := strings.TrimPrefix(out, "event: gap\ndata: {\"dropped\":3}\n\n")
	if !strings.HasPrefix(rest, "id: 5\nevent: alert\ndata: ") || !strings.HasSuffix(rest, "\n\n") {
		t.Fatalf("alert frame malformed:\n%s", rest)
	}
	var back subscribe.Alert
	data := strings.TrimSuffix(strings.TrimPrefix(rest, "id: 5\nevent: alert\ndata: "), "\n\n")
	if err := json.Unmarshal([]byte(data), &back); err != nil {
		t.Fatalf("alert payload %q: %v", data, err)
	}
	if back != a {
		t.Fatalf("round trip: %+v != %+v", back, a)
	}

	a.Gap = 0
	if out := string(sseEvent(a)); strings.Contains(out, "event: gap") {
		t.Fatalf("gap marker on a gapless alert:\n%s", out)
	}
}
