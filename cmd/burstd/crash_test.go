package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"histburst"
	"histburst/internal/faultio"
)

// buildSnapshotBytes returns a small detector with n ingested elements and
// its encoded snapshot payload.
func buildSnapshotBytes(t *testing.T, n int) (*histburst.Detector, []byte) {
	t.Helper()
	det, err := histburst.New(8, histburst.WithPBE2(2), histburst.WithSketchDims(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		det.Append(uint64(i%8), int64(10*i))
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return det, buf.Bytes()
}

// TestRecoverySurvivesCrashAtEveryWriteOffset simulates a process crash at
// every byte offset of a newer snapshot's write (plus the completed-rename
// state) and checks that startup recovery always produces a detector: the
// newest intact one after a completed write, the previous one otherwise.
func TestRecoverySurvivesCrashAtEveryWriteOffset(t *testing.T) {
	_, oldSnap := buildSnapshotBytes(t, 3)
	_, newSnap := buildSnapshotBytes(t, 5)

	for step := 0; step < faultio.CrashSteps(newSnap); step++ {
		dir := t.TempDir()
		st, err := openSnapStore(dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.write(oldSnap); err != nil {
			t.Fatal(err)
		}
		// The crash interrupts the write of snapshot seq 1.
		if _, err := faultio.CrashAtomicWrite(dir, snapName(1), newSnap, step); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		st2, err := openSnapStore(dir, 3)
		if err != nil {
			t.Fatalf("step %d: reopen: %v", step, err)
		}
		det, name, ok, err := st2.recover(t.Logf)
		if err != nil || !ok {
			t.Fatalf("step %d: recovery found nothing (err=%v)", step, err)
		}
		complete := step == len(newSnap)+1
		switch {
		case complete && det.N() != 5:
			t.Fatalf("step %d: completed write recovered %s with N=%d, want 5", step, name, det.N())
		case !complete && det.N() != 3:
			t.Fatalf("step %d: interrupted write recovered %s with N=%d, want prior snapshot's 3", step, name, det.N())
		}
	}
}

// TestRecoverySkipsBitFlippedSnapshot flips each byte of the newest
// snapshot in turn; the CRC32 footer must reject every corruption and
// recovery must fall back to the older intact snapshot.
func TestRecoverySkipsBitFlippedSnapshot(t *testing.T) {
	_, oldSnap := buildSnapshotBytes(t, 3)
	_, newSnap := buildSnapshotBytes(t, 5)

	for i := 0; i < len(newSnap); i++ {
		dir := t.TempDir()
		st, err := openSnapStore(dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.write(oldSnap); err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), newSnap...)
		flipped[i] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), flipped, 0o644); err != nil {
			t.Fatal(err)
		}

		det, name, ok, err := st.recover(t.Logf)
		if err != nil || !ok {
			t.Fatalf("flip %d: recovery found nothing (err=%v)", i, err)
		}
		if det.N() != 3 {
			t.Fatalf("flip %d: recovered %s with N=%d — corrupt snapshot was accepted", i, name, det.N())
		}
	}
}

// TestNewServerRecoversThroughCrashDebris is the end-to-end migration
// test: a directory holding a valid legacy snapshot, a torn temp file, and
// a bit-flipped newer snapshot must boot into the valid state — and come up
// as a segment store whose manifest serves subsequent boots.
func TestNewServerRecoversThroughCrashDebris(t *testing.T) {
	dir := t.TempDir()
	st, err := openSnapStore(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, good := buildSnapshotBytes(t, 4)
	if _, err := st.write(good); err != nil {
		t.Fatal(err)
	}
	_, newer := buildSnapshotBytes(t, 6)
	// Torn mid-write temp file for seq 1…
	if _, err := faultio.CrashAtomicWrite(dir, snapName(1), newer, len(newer)/2); err != nil {
		t.Fatal(err)
	}
	// …and a completed but bit-rotted seq 2.
	rotted := append([]byte(nil), newer...)
	rotted[len(rotted)/3] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), rotted, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := newServer(serverOpts{K: 8, Gamma: 2, Seed: 1, SnapDir: dir, Retain: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv.store.N() != 4 {
		t.Fatalf("booted with N=%d, want the intact snapshot's 4", srv.store.N())
	}
	if got := len(srv.store.Segments()); got != 1 {
		t.Fatalf("migration produced %d segments, want 1", got)
	}
	if err := srv.store.Close(); err != nil {
		t.Fatal(err)
	}

	// The migration wrote a manifest: the next boot recovers from the store
	// directly, legacy debris untouched.
	srv2, err := newServer(serverOpts{SnapDir: dir, Retain: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.store.N() != 4 {
		t.Fatalf("second boot N=%d, want 4", srv2.store.N())
	}
	if err := srv2.store.Close(); err != nil {
		t.Fatal(err)
	}
}
