package main

import "net/http"

// handleUI serves the embedded single-page timeline view — the repository's
// analogue of the estorm.org demo: a burst-activity chart over the stream's
// horizon plus a table of the top bursting events at the selected instant.
//
// Visual notes: single data series (burst magnitude), so it wears
// categorical slot 1 of the validated reference palette (light #2a78d6 /
// dark #3987e5, CVD-checked as part of that palette); all text uses text
// tokens, never the series color; the table below is the accessible
// data view; bars carry native hover tooltips and click-to-select.
func (s *server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(uiPage)) //histburst:allow errdrop -- client went away; nothing to do about a failed HTML write
}

const uiPage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>histburst — bursty events throughout history</title>
<style>
  .viz-root {
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --grid:           #e4e3df;
    --series-1:       #2a78d6;
  }
  @media (prefers-color-scheme: dark) {
    .viz-root {
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --grid:           #3a3936;
      --series-1:       #3987e5;
    }
  }
  body { margin: 0; }
  .viz-root {
    font: 14px/1.45 system-ui, sans-serif;
    background: var(--surface-1);
    color: var(--text-primary);
    min-height: 100vh;
    padding: 24px;
    box-sizing: border-box;
  }
  h1 { font-size: 18px; margin: 0 0 2px; }
  .sub { color: var(--text-secondary); margin: 0 0 20px; }
  .controls { display: flex; gap: 12px; align-items: center; margin-bottom: 12px; flex-wrap: wrap; }
  .controls label { color: var(--text-secondary); }
  .controls input {
    width: 90px; padding: 4px 6px; border: 1px solid var(--grid);
    border-radius: 6px; background: var(--surface-1); color: var(--text-primary);
  }
  svg { display: block; width: 100%; height: 220px; }
  .bar { fill: var(--series-1); cursor: pointer; }
  .bar.selected { stroke: var(--text-primary); stroke-width: 1.5; }
  .gridline { stroke: var(--grid); stroke-width: 1; }
  .axis-label { fill: var(--text-secondary); font-size: 11px; }
  table { border-collapse: collapse; margin-top: 16px; min-width: 420px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 500; }
  th, td { padding: 6px 14px 6px 0; border-bottom: 1px solid var(--grid); }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  .mark { display: inline-block; width: 10px; height: 10px; border-radius: 3px;
          background: var(--series-1); margin-right: 8px; vertical-align: baseline; }
  .hint { color: var(--text-secondary); margin-top: 8px; }
</style>
</head>
<body>
<div class="viz-root">
  <h1>Bursty events throughout history</h1>
  <p class="sub">Peak burstiness per time step — click a bar to list the top bursting events at that instant.</p>
  <div class="controls">
    <label>burst span τ <input id="tau" type="number" value="86400" min="1"></label>
    <label>top k <input id="k" type="number" value="8" min="1" max="50"></label>
    <button id="reload">reload</button>
  </div>
  <svg id="chart" role="img" aria-label="Peak burstiness per time step"></svg>
  <div id="detail"></div>
  <p class="hint" id="status">loading…</p>
</div>
<script>
"use strict";
const STEPS = 48;
const $ = id => document.getElementById(id);

async function getJSON(url) {
  const r = await fetch(url);
  if (!r.ok) throw new Error(url + ": " + r.status);
  return r.json();
}

async function load() {
  const tau = +$("tau").value, k = +$("k").value;
  $("status").textContent = "querying " + STEPS + " instants…";
  const stats = await getJSON("/v1/stats");
  const horizon = stats.maxTime;
  const times = Array.from({length: STEPS}, (_, i) =>
    Math.round(horizon * (i + 1) / STEPS));
  const tops = await Promise.all(times.map(t =>
    getJSON("/v1/top?t=" + t + "&k=" + k + "&tau=" + tau)));
  const series = tops.map((r, i) => ({
    t: times[i],
    peak: Math.max(0, ...(r.events || []).map(e => e.Burstiness)),
    events: r.events || [],
  }));
  draw(series, tau);
  $("status").textContent = stats.elements + " elements summarized in " +
    (stats.bytes / 1024).toFixed(0) + " KB (id space " + stats.eventSpace + ")";
}

function draw(series, tau) {
  const svg = $("chart");
  const W = svg.clientWidth || 800, H = 220, padL = 56, padB = 22, padT = 8;
  const max = Math.max(1, ...series.map(d => d.peak));
  const bw = (W - padL) / series.length;
  let out = "";
  for (let g = 0; g <= 4; g++) {
    const y = padT + (H - padB - padT) * g / 4;
    const v = Math.round(max * (1 - g / 4));
    out += '<line class="gridline" x1="' + padL + '" y1="' + y + '" x2="' + W + '" y2="' + y + '"/>' +
           '<text class="axis-label" x="' + (padL - 6) + '" y="' + (y + 4) + '" text-anchor="end">' + v + "</text>";
  }
  series.forEach((d, i) => {
    const h = Math.max(1, (H - padB - padT) * d.peak / max);
    const x = padL + i * bw + 1, y = H - padB - h;
    out += '<rect class="bar" data-i="' + i + '" x="' + x + '" y="' + y +
      '" width="' + Math.max(1, bw - 2) + '" height="' + h + '" rx="2">' +
      "<title>t=" + d.t + "  peak b=" + d.peak.toFixed(0) + "</title></rect>";
    if (i % 8 === 0) {
      out += '<text class="axis-label" x="' + x + '" y="' + (H - 6) + '">t=' + d.t + "</text>";
    }
  });
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  svg.innerHTML = out;
  svg.querySelectorAll(".bar").forEach(b =>
    b.addEventListener("click", () => select(series, +b.dataset.i, tau)));
  select(series, series.reduce((a, d, i) => d.peak > series[a].peak ? i : a, 0), tau);
}

function select(series, i, tau) {
  document.querySelectorAll(".bar").forEach((b, j) =>
    b.classList.toggle("selected", j === i));
  const d = series[i];
  let html = "<table><thead><tr><th>event</th><th class=num>burstiness (t=" +
    d.t + ", τ=" + tau + ")</th></tr></thead><tbody>";
  if (!d.events.length) html += '<tr><td colspan="2">no bursting events</td></tr>';
  for (const e of d.events) {
    html += '<tr><td><span class="mark"></span>event ' + e.Event +
      '</td><td class="num">' + e.Burstiness.toFixed(0) + "</td></tr>";
  }
  $("detail").innerHTML = html + "</tbody></table>";
}

$("reload").addEventListener("click", () => load().catch(err => {
  $("status").textContent = String(err);
}));
load().catch(err => { $("status").textContent = String(err); });
</script>
</body>
</html>
`
