package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func postBatch(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query/batch", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	return resp.StatusCode, out
}

func TestQueryBatchEndpoint(t *testing.T) {
	_, ts := liveServer(t, "")
	if code, _ := postAppend(t, ts.URL, `{"event":3,"time":100},{"event":3,"time":200},{"event":5,"time":200}`); code != 200 {
		t.Fatalf("seed append failed: %d", code)
	}
	// A batch result must match the single-query endpoint exactly, in
	// request order, with the default tau applied to omitted spans.
	code, out := postBatch(t, ts.URL,
		`{"queries":[{"event":3,"t":200,"tau":100},{"event":5,"t":200,"tau":100},{"event":3,"t":200}]}`)
	if code != 200 {
		t.Fatalf("batch: code=%d out=%v", code, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	for i, want := range []struct {
		event, tau float64
	}{{3, 100}, {5, 100}, {3, 86_400}} {
		res := results[i].(map[string]any)
		if res["event"].(float64) != want.event || res["tau"].(float64) != want.tau {
			t.Fatalf("result %d = %v, want event %v tau %v", i, res, want.event, want.tau)
		}
		single := getSingle(t, ts.URL, uint64(want.event), 200, int64(want.tau))
		if res["burstiness"].(float64) != single {
			t.Fatalf("result %d burstiness %v, single-query endpoint says %v", i, res["burstiness"], single)
		}
	}
}

func getSingle(t *testing.T, url string, e uint64, tm, tau int64) float64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/burstiness?e=%d&t=%d&tau=%d", url, e, tm, tau))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["burstiness"].(float64)
}

func TestQueryBatchLarge(t *testing.T) {
	_, ts := liveServer(t, "")
	if code, _ := postAppend(t, ts.URL, `{"event":3,"time":100},{"event":3,"time":200}`); code != 200 {
		t.Fatal("seed append failed")
	}
	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"event":%d,"t":%d,"tau":50}`, i%64, 100+i%200)
	}
	b.WriteString(`]}`)
	code, out := postBatch(t, ts.URL, b.String())
	if code != 200 {
		t.Fatalf("large batch: code=%d out=%v", code, out)
	}
	if n := len(out["results"].([]any)); n != 2000 {
		t.Fatalf("large batch returned %d results", n)
	}
}

func TestQueryBatchValidation(t *testing.T) {
	_, ts := liveServer(t, "")
	if code, _ := postBatch(t, ts.URL, `{"queries":[]}`); code != 400 {
		t.Fatalf("empty batch: code=%d", code)
	}
	if code, _ := postBatch(t, ts.URL, `not json`); code != 400 {
		t.Fatalf("garbage body: code=%d", code)
	}
	if code, _ := postBatch(t, ts.URL, `{"queries":[{"event":1,"t":5,"tau":-3}]}`); code != 400 {
		t.Fatalf("negative tau: code=%d", code)
	}
	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"event":1,"t":5}`)
	}
	b.WriteString(`]}`)
	if code, _ := postBatch(t, ts.URL, b.String()); code != 400 {
		t.Fatalf("oversized batch: code=%d", code)
	}
}
