package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"histburst"
	"histburst/internal/stream"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(serverOpts{N: 20_000, Gamma: 8, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if stats["elements"].(float64) <= 0 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestBurstinessEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/v1/burstiness?e=0&t=1728000&tau=86400", &out); code != 200 {
		t.Fatalf("status %d: %v", code, out)
	}
	if _, ok := out["burstiness"]; !ok {
		t.Fatalf("no burstiness field: %v", out)
	}
	// Missing parameter → 400 with error JSON.
	if code := getJSON(t, ts.URL+"/v1/burstiness?e=0", &out); code != 400 {
		t.Fatalf("missing t: status %d", code)
	}
	// Bad tau → 400.
	if code := getJSON(t, ts.URL+"/v1/burstiness?e=0&t=5&tau=0", &out); code != 400 {
		t.Fatalf("tau=0: status %d", code)
	}
}

func TestTimesAndEventsEndpoints(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	if code := getJSON(t, ts.URL+"/v1/times?e=0&theta=100", &out); code != 200 {
		t.Fatalf("times status %d: %v", code, out)
	}
	if code := getJSON(t, ts.URL+"/v1/events?t=1728000&theta=100", &out); code != 200 {
		t.Fatalf("events status %d: %v", code, out)
	}
	if _, ok := out["events"]; !ok {
		t.Fatalf("no events field: %v", out)
	}
	if code := getJSON(t, ts.URL+"/v1/events?t=1728000&theta=0", &out); code != 400 {
		t.Fatalf("theta=0: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/top?t=1728000&k=3", &out); code != 200 {
		t.Fatalf("top status %d: %v", code, out)
	}
	if evs, ok := out["events"].([]any); !ok || len(evs) != 3 {
		t.Fatalf("top events = %v", out["events"])
	}
	if code := getJSON(t, ts.URL+"/v1/top?t=5&k=0", &out); code != 400 {
		t.Fatalf("k=0: status %d", code)
	}
}

func TestUIPage(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"histburst", "/v1/top", "svg"} {
		if !strings.Contains(body, want) {
			t.Fatalf("UI page missing %q", want)
		}
	}
	// Unknown paths are 404, not the UI.
	r2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 404 {
		t.Fatalf("unknown path status %d", r2.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The detector is read-only after Finish; hammer it from many
	// goroutines (run with -race in CI).
	ts := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(ts.URL + "/v1/burstiness?e=0&t=1728000")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
}

func TestServerFromSketchFile(t *testing.T) {
	// Build a tiny detector, save it, serve from the sketch.
	det, err := histburst.New(4, histburst.WithPBE2(2), histburst.WithSketchDims(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	det.Append(1, 10)
	det.Append(1, 20)
	path := filepath.Join(t.TempDir(), "d.hbsk")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	srv, err := newServer(serverOpts{Sketch: path, Gamma: 8, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv.store.N() != 2 {
		t.Fatalf("N = %d", srv.store.N())
	}
}

func TestServerFromDatasetFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.hbst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Write(f, stream.Stream{{Event: 0, Time: 1}, {Event: 1, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	srv, err := newServer(serverOpts{In: path, Gamma: 8, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv.store.N() != 2 {
		t.Fatalf("N = %d", srv.store.N())
	}
	if _, err := newServer(serverOpts{In: "/no/such/file", Gamma: 8, Seed: 1, Logf: t.Logf}); err == nil {
		t.Fatal("missing file accepted")
	}
}
