package main

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/stream"
)

// getBody fetches a URL and decodes the JSON body alongside the status
// code, reusing main_test's getJSON helper.
func getBody(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	var out map[string]any
	return getJSON(t, url, &out), out
}

func TestDiskFaultFlipsReadOnlyAndRecovers(t *testing.T) {
	srv, ts := liveServer(t, t.TempDir())
	srv.probeEvery = 10 * time.Millisecond

	// Inject a persistent ENOSPC through the ingest seam. The real stager
	// stays reachable for the recovery phase.
	var faulty atomic.Bool
	real := srv.append
	srv.append = func(elems stream.Stream) segstore.BatchResult {
		if faulty.Load() {
			return segstore.BatchResult{Err: fmt.Errorf("wal append: %w", syscall.ENOSPC)}
		}
		return real(elems)
	}
	faulty.Store(true)

	// The append retries through the backoff budget, then degrades: 503
	// with a Retry-After hint, not a 500.
	resp, err := http.Post(ts.URL+"/v1/append", "application/json",
		strings.NewReader(`{"elements":[{"event":1,"time":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted append answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded append carries no Retry-After")
	}
	if !srv.readOnly.Load() {
		t.Fatal("server did not flip read-only")
	}

	// Read-only mode: appends bounce immediately, queries keep serving,
	// readyz says no, healthz stays alive but reports degraded.
	if code, _ := postAppend(t, ts.URL, `{"event":1,"time":11}`); code != http.StatusServiceUnavailable {
		t.Fatalf("read-only append answered %d, want 503", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/stats"); code != http.StatusOK {
		t.Fatalf("query during read-only answered %d, want 200", code)
	}
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || body["readOnly"] != true {
		t.Fatalf("readyz during read-only: %d %v", code, body)
	}
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("healthz during read-only: %d %v", code, body)
	}

	// The disk recovers; the prober notices and restores write service.
	faulty.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for srv.readOnly.Load() {
		if time.Now().After(deadline) {
			t.Fatal("prober never lifted read-only mode")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, out := postAppend(t, ts.URL, `{"event":1,"time":12}`); code != http.StatusOK || out["appended"].(float64) != 1 {
		t.Fatalf("append after recovery: %d %v", code, out)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery answered %d, want 200", code)
	}
}

func TestNonDiskAppendErrorStaysA500(t *testing.T) {
	srv, ts := liveServer(t, "")
	srv.append = func(stream.Stream) segstore.BatchResult {
		return segstore.BatchResult{Err: fmt.Errorf("admission mismatch")}
	}
	resp, err := http.Post(ts.URL+"/v1/append", "application/json",
		strings.NewReader(`{"elements":[{"event":1,"time":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("logic error answered %d, want 500", resp.StatusCode)
	}
	if srv.readOnly.Load() {
		t.Fatal("logic error flipped read-only")
	}
}

func TestQuarantineSurfacesOverHTTP(t *testing.T) {
	// Damage one sealed segment on disk, let the server's open-time check
	// quarantine it, and read the degradation back through every surface.
	dir := t.TempDir()
	st, err := segstore.Open(dir, segstore.Config{K: 64, Gamma: 2, Seed: 1, SealEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := st.Append(uint64(i%4), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(true); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("fixture sealed %d segments, want >= 2", len(segs))
	}
	path := filepath.Join(dir, segs[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := liveServer(t, dir)
	if h := srv.store.Health(); h.Quarantined != 1 {
		t.Fatalf("store health after damaged open: %+v", h)
	}
	code, body := getBody(t, ts.URL+"/v1/segments")
	if code != http.StatusOK {
		t.Fatalf("/v1/segments answered %d", code)
	}
	if q, ok := body["quarantined"].([]any); !ok || len(q) != 1 {
		t.Fatalf("/v1/segments quarantined = %v", body["quarantined"])
	}
	env, ok := body["envelope"].(map[string]any)
	if !ok || env["degraded"] != true {
		t.Fatalf("/v1/segments envelope = %v", body["envelope"])
	}
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("healthz with quarantine: %d %v", code, body)
	}
	// Quarantine alone does not make the node unready — it still ingests
	// and answers; only read-only or a wedged store pulls it from rotation.
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with quarantine answered %d, want 200", code)
	}
	// Point queries answer, with the widened envelope attached.
	code, q := getBody(t, ts.URL+"/v1/burstiness?e=1&t=15&tau=4")
	if code != http.StatusOK {
		t.Fatalf("burstiness with quarantine answered %d", code)
	}
	if _, ok := q["envelope"].(map[string]any); !ok {
		t.Fatalf("degraded burstiness response carries no envelope: %v", q)
	}
}
