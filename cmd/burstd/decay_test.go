package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"histburst/internal/segstore"
)

func TestParseDecayTiers(t *testing.T) {
	got, err := parseDecayTiers(" 86400:8:3600 , 864000:32:43200:4 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []segstore.DecayTier{
		{Age: 86400, Gamma: 8, Res: 3600},
		{Age: 864000, Gamma: 32, Res: 43200, W: 4},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tier %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if tiers, err := parseDecayTiers("  "); err != nil || tiers != nil {
		t.Fatalf("blank spec: %+v, %v, want nil, nil", tiers, err)
	}
	for _, bad := range []string{
		"86400",            // too few fields
		"86400:8",          // too few fields
		"1:2:3:4:5",        // too many fields
		"day:8:3600",       // non-numeric age
		"86400:wide:3600",  // non-numeric gamma
		"86400:8:hour",     // non-numeric res
		"86400:8:3600:w8",  // non-numeric width
		"86400:8:3600,bad", // second tier malformed
	} {
		if _, err := parseDecayTiers(bad); err == nil {
			t.Fatalf("parseDecayTiers(%q) accepted a malformed spec", bad)
		}
	}
}

// TestDecayTiersEndToEnd drives -decay-tiers through the server: ingest far
// past the tier age, wait for the compactor to re-summarize, and read the
// per-tier footprint back from /v1/segments and /healthz.
func TestDecayTiersEndToEnd(t *testing.T) {
	tiers, err := parseDecayTiers("1000:8:100:136")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(serverOpts{
		K: 64, Gamma: 2, Seed: 1, SnapDir: t.TempDir(), Retain: 3,
		SealEvents: 8, Fanout: 2, DecayTiers: tiers, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = srv.store.Close() })

	// 200 elements at 10-unit spacing: everything older than 1000 behind
	// the frontier (t=1990) becomes eligible for the single decay tier.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"event":%d,"time":%d}`, i%8, i*10)
	}
	if code, out := postAppend(t, ts.URL, sb.String()); code != 200 {
		t.Fatalf("append: code=%d out=%v", code, out)
	}

	type segsBody struct {
		Tiers []segstore.TierStats `json:"tiers"`
	}
	deadline := time.Now().Add(5 * time.Second)
	var body segsBody
	for {
		resp, err := http.Get(ts.URL + "/v1/segments")
		if err != nil {
			t.Fatal(err)
		}
		body = segsBody{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(body.Tiers) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no decayed tier appeared: %+v", body.Tiers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var deep *segstore.TierStats
	for i := range body.Tiers {
		if body.Tiers[i].Tier == 1 {
			deep = &body.Tiers[i]
		}
	}
	if deep == nil {
		t.Fatalf("tier table %+v lacks the configured tier 1", body.Tiers)
	}
	if deep.Gamma != 8 || deep.W != 136 || deep.Res != 100 {
		t.Fatalf("tier 1 fidelity %+v, want γ=8 w=136 res=100", *deep)
	}
	if deep.Segments == 0 || deep.Bytes == 0 {
		t.Fatalf("tier 1 reports no footprint: %+v", *deep)
	}

	// /healthz mirrors the same per-tier summary.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Tiers []segstore.TierStats `json:"tiers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health.Tiers) < 2 {
		t.Fatalf("/healthz tiers %+v, want the decayed ladder", health.Tiers)
	}
}
