package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"histburst"
	"histburst/internal/stream"
	"histburst/internal/workload"
)

// serverOpts collects everything newServer needs; the zero value plus an
// Addr is a stateless demo server, matching the old behavior.
type serverOpts struct {
	Sketch string  // saved sketch file (skips building)
	In     string  // dataset file from burstgen
	N      int64   // demo stream size when no -in is given
	K      uint64  // when > 0: start empty with this event-id space
	Gamma  float64 // PBE-2 error cap γ
	Seed   int64   // workload / sketch seed

	SnapDir     string // snapshot directory ("" = stateless)
	Retain      int    // snapshots kept
	MaxInflight int    // concurrent /v1 requests before shedding
	Logf        func(format string, args ...any)
}

// server wraps the detector behind an RWMutex: query handlers share read
// locks (detector queries are pure), /v1/append and checkpoints take the
// write lock. Everything else is the operational shell — load shedding,
// panic recovery, readiness, snapshots.
type server struct {
	mu  sync.RWMutex
	det *histburst.Detector // guarded by mu

	snaps    *snapStore  // nil when persistence is disabled
	dirty    atomic.Bool // appends since the last checkpoint
	ready    atomic.Bool
	inflight chan struct{}
	logf     func(format string, args ...any)
}

// newServer builds the server before any handler goroutine exists, so the
// detector writes below run unlocked by construction.
//
//histburst:allow lockguard -- single-goroutine construction; no handler can run before ListenAndServe
func newServer(o serverOpts) (*server, error) {
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	s := &server{
		inflight: make(chan struct{}, o.MaxInflight),
		logf:     o.Logf,
	}
	if o.SnapDir != "" {
		st, err := openSnapStore(o.SnapDir, o.Retain)
		if err != nil {
			return nil, fmt.Errorf("snapshots: %w", err)
		}
		s.snaps = st
		det, name, ok, err := st.recover(s.logf)
		if err != nil {
			return nil, fmt.Errorf("snapshots: %w", err)
		}
		if ok {
			s.logf("burstd: recovered from snapshot %s (%d elements)", name, det.N())
			s.det = det
		}
	}
	if s.det == nil {
		det, err := buildDetector(o)
		if err != nil {
			return nil, err
		}
		s.det = det
	}
	s.ready.Store(true)
	return s, nil
}

// buildDetector produces the initial detector when no snapshot exists: a
// saved sketch, a dataset file, an empty detector (-k), or the demo stream.
func buildDetector(o serverOpts) (*histburst.Detector, error) {
	if o.Sketch != "" {
		return histburst.LoadFile(o.Sketch)
	}
	if o.K > 0 {
		return histburst.New(o.K, histburst.WithPBE2(o.Gamma), histburst.WithSeed(o.Seed))
	}
	var data stream.Stream
	if o.In != "" {
		f, err := os.Open(o.In)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		data, err = stream.Read(f)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		data, err = workload.Generate(workload.OlympicRioSpec(o.Seed, o.N))
		if err != nil {
			return nil, err
		}
	}
	k := uint64(1)
	for _, el := range data {
		if el.Event+1 > k {
			k = el.Event + 1
		}
	}
	det, err := histburst.New(k, histburst.WithPBE2(o.Gamma), histburst.WithSeed(o.Seed))
	if err != nil {
		return nil, err
	}
	for _, el := range data {
		det.Append(el.Event, el.Time)
	}
	det.Finish()
	return det, nil
}

// handler assembles the full middleware stack: panic recovery outermost,
// then per-route registration. Query and ingest routes sit behind the
// load-shedding semaphore; health probes never shed.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	limited := func(h http.HandlerFunc) http.Handler { return s.limit(h) }
	mux.Handle("GET /v1/burstiness", limited(s.handleBurstiness))
	mux.Handle("GET /v1/times", limited(s.handleTimes))
	mux.Handle("GET /v1/events", limited(s.handleEvents))
	mux.Handle("GET /v1/top", limited(s.handleTop))
	mux.Handle("GET /v1/stats", limited(s.handleStats))
	mux.Handle("POST /v1/query/batch", limited(s.handleQueryBatch))
	mux.Handle("POST /v1/append", limited(s.handleAppend))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /{$}", s.handleUI)
	return s.recoverPanics(mux)
}

// routes is kept for compatibility with older tests/tools; it returns the
// fully assembled handler.
func (s *server) routes() http.Handler { return s.handler() }

// recoverPanics turns a handler panic into a 500 instead of tearing down
// the whole connection (and, under http.Serve, killing nothing else — but
// the stack trace would be lost in the noise).
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.logf("burstd: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limit sheds load once MaxInflight requests are already in flight,
// answering 503 with a Retry-After hint instead of queueing unboundedly.
func (s *server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server overloaded"))
		}
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// appendRequest is the /v1/append body: a batch of (event, time) elements.
// Elements are applied in order under one lock acquisition; out-of-order
// timestamps are clamped exactly as in direct ingestion.
type appendRequest struct {
	Elements []appendElement `json:"elements"`
}

type appendElement struct {
	Event uint64 `json:"event"`
	Time  int64  `json:"time"`
}

// maxAppendBody bounds an ingest request body; ~8 MB is far beyond any
// sane batch and keeps a hostile client from ballooning the heap.
const maxAppendBody = 8 << 20

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("shutting down"))
		return
	}
	var req appendRequest
	body := http.MaxBytesReader(w, r.Body, maxAppendBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Elements) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	s.mu.Lock()
	for _, el := range req.Elements {
		s.det.Append(el.Event, el.Time)
	}
	total, ooo := s.det.N(), s.det.OutOfOrder()
	s.mu.Unlock()
	s.dirty.Store(true)
	writeJSON(w, map[string]any{
		"appended": len(req.Elements), "elements": total, "outOfOrder": ooo,
	})
}

// checkpoint serializes the detector (under the write lock — Save flushes
// open windows) and writes it as the next snapshot outside the lock, so
// disk latency never blocks queries. force writes even when no appends
// arrived since the last checkpoint.
func (s *server) checkpoint(force bool) (string, error) {
	if s.snaps == nil {
		return "", nil
	}
	if !s.dirty.Swap(false) && !force {
		return "", nil
	}
	var buf bytes.Buffer
	s.mu.Lock()
	err := s.det.Save(&buf)
	s.mu.Unlock()
	if err != nil {
		return "", err
	}
	return s.snaps.write(buf.Bytes())
}

func (s *server) handleBurstiness(w http.ResponseWriter, r *http.Request) {
	e, err1 := paramUint(r, "e")
	t, err2 := paramInt(r, "t")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	b, err := s.det.Burstiness(e, t, tau)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"event": e, "t": t, "tau": tau, "burstiness": b})
}

func (s *server) handleTimes(w http.ResponseWriter, r *http.Request) {
	e, err1 := paramUint(r, "e")
	theta, err2 := paramFloat(r, "theta")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	ranges, err := s.det.BurstyTimes(e, theta, tau)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"event": e, "theta": theta, "tau": tau, "ranges": ranges})
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, err1 := paramInt(r, "t")
	theta, err2 := paramFloat(r, "theta")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	ids, err := s.det.BurstyEvents(t, theta, tau)
	if err != nil {
		s.mu.RUnlock()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type hit struct {
		Event      uint64  `json:"event"`
		Burstiness float64 `json:"burstiness"`
	}
	hits := make([]hit, 0, len(ids))
	for _, id := range ids {
		b, err := s.det.Burstiness(id, t, tau)
		if err != nil {
			s.mu.RUnlock()
			httpError(w, http.StatusInternalServerError, fmt.Errorf("scoring event %d: %w", id, err))
			return
		}
		hits = append(hits, hit{Event: id, Burstiness: b})
	}
	s.mu.RUnlock()
	writeJSON(w, map[string]any{"t": t, "theta": theta, "tau": tau, "events": hits})
}

func (s *server) handleTop(w http.ResponseWriter, r *http.Request) {
	t, err1 := paramInt(r, "t")
	k, err2 := paramIntDefault(r, "k", 10)
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	top, err := s.det.TopBursty(t, int(k), tau)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"t": t, "k": k, "tau": tau, "events": top})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stats := map[string]any{
		"elements":   s.det.N(),
		"eventSpace": s.det.K(),
		"maxTime":    s.det.MaxTime(),
		"bytes":      s.det.Bytes(),
		"outOfOrder": s.det.OutOfOrder(),
	}
	s.mu.RUnlock()
	writeJSON(w, stats)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("burstd: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //histburst:allow errdrop -- already reporting an error; a failed write has no further recovery
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func paramUint(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseUint(v, 10, 64)
}

func paramInt(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseInt(v, 10, 64)
}

func paramIntDefault(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseInt(v, 10, 64)
}

func paramFloat(r *http.Request, name string) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseFloat(v, 64)
}
