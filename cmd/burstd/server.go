package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"histburst"
	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/wire"
	"histburst/internal/workload"
)

// serverOpts collects everything newServer needs; the zero value plus an
// Addr is a stateless demo server, matching the old behavior.
type serverOpts struct {
	Sketch string  // saved sketch file (skips building)
	In     string  // dataset file from burstgen
	N      int64   // demo stream size when no -in is given
	K      uint64  // when > 0: start empty with this event-id space
	Gamma  float64 // PBE-2 error cap γ
	Seed   int64   // workload / sketch seed

	SnapDir     string               // store directory ("" = stateless)
	Retain      int                  // legacy snapshots kept (migration only)
	SealEvents  int64                // head seal threshold (0 = store default)
	Fanout      int                  // compaction fanout (0 = store default)
	DecayTiers  []segstore.DecayTier // time-decayed compaction ladder (nil = full fidelity forever)
	MaxInflight int    // concurrent /v1 requests before shedding
	MaxSubs     int    // armed standing queries cap (0 = subscribe default)
	AlertQueue  int    // per-subscriber alert queue capacity (0 = default)

	WALSync       segstore.WALSyncPolicy // when the WAL fsyncs
	WALSyncEvery  time.Duration          // fsync cadence under the interval policy
	ScrubInterval time.Duration          // segment scrub cadence (0 = store default)

	Logf func(format string, args ...any)
}

// server fronts a segmented timeline store. Query handlers take a snapshot
// — one atomic pointer load — and run lock-free against it; ingest appends
// into the store's head, and checkpoints defer to the store's own
// manifest-backed durability. The whole-detector snapshot path of earlier
// versions survives only as a read-only migration source: a directory whose
// newest artifact is a legacy snap-*.hbsk file is loaded once, bootstrapped
// into the store as its first segment, and served from the manifest from
// then on.
type server struct {
	store  *segstore.Store
	stager *segstore.Stager // sharded ingest front end for /v1/append

	// append is the ingest seam: stager.Append in production, swappable in
	// tests to inject disk faults into the degraded-mode machinery.
	append func(stream.Stream) segstore.BatchResult

	// alerts is the standing-query subsystem: the hub hangs off the
	// stager's commit hook and fans fired alerts out to SSE, webhook, and
	// wire subscribers (see alerts.go).
	alerts alerting

	//histburst:atomic
	dirty atomic.Bool // appends since the last checkpoint
	//histburst:atomic
	ready atomic.Bool
	// readOnly flips when the write path hits a persistent disk fault
	// (ENOSPC/EIO survived the retry budget): appends answer 503 +
	// Retry-After while queries keep serving, and a background prober
	// flips it back once the WAL syncs again.
	//
	//histburst:atomic
	readOnly atomic.Bool
	//histburst:atomic
	probing    atomic.Bool   // one prober at a time
	probeEvery time.Duration // prober cadence (tests shrink it)
	inflight   chan struct{}
	// retryHint is the Retry-After duration (nanoseconds) shed and degraded
	// responses advertise, derived from appendWithRetry's live backoff state
	// instead of a hardcoded constant: it tracks the backoff the write path
	// is actually experiencing and resets once appends succeed again.
	//
	//histburst:atomic
	retryHint atomic.Int64
	logf      func(format string, args ...any)
}

// newServer builds the server: recover from a manifest if one exists,
// otherwise migrate a legacy snapshot or build the initial detector, then
// bootstrap the store from it.
func newServer(o serverOpts) (*server, error) {
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	s := &server{
		inflight:   make(chan struct{}, o.MaxInflight),
		probeEvery: time.Second,
		logf:       o.Logf,
	}
	s.retryHint.Store(int64(time.Second))

	lifecycle := segstore.Config{
		SealEvents: o.SealEvents, CompactFanout: o.Fanout,
		DecayTiers: o.DecayTiers,
		WALSync:    o.WALSync, WALSyncEvery: o.WALSyncEvery,
		ScrubInterval: o.ScrubInterval, Logf: o.Logf,
	}
	if o.SnapDir != "" {
		if _, err := os.Stat(filepath.Join(o.SnapDir, segstore.ManifestName)); err == nil {
			st, err := segstore.Open(o.SnapDir, lifecycle)
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			s.store = st
			s.stager = segstore.NewStager(st)
			s.append = s.stager.Append
			s.initAlerts(o.MaxSubs, o.AlertQueue)
			if h := st.Health(); h.Quarantined > 0 {
				s.logf("burstd: %d segments in quarantine (%d elements of history missing)",
					h.Quarantined, h.QuarantinedElements)
			}
			s.logf("burstd: recovered store generation %d (%d elements, %d segments)",
				st.Generation(), st.N(), len(st.Segments()))
			s.ready.Store(true)
			return s, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}

	// No manifest: find the seed detector — a legacy snapshot (migration),
	// a saved sketch, a dataset/demo stream, or nothing (-k empty start).
	det, err := seedDetector(o)
	if err != nil {
		return nil, err
	}
	cfg := lifecycle
	if det != nil {
		p, ok := det.Params()
		if !ok {
			return nil, fmt.Errorf("burstd: the segment store serves PBE-2 sketches only; rebuild the input with burstcli -pbe2")
		}
		cfg.K, cfg.Gamma, cfg.Seed = p.K, p.Gamma, p.Seed
		cfg.D, cfg.W, cfg.NoIndex = p.D, p.W, p.NoIndex
	} else {
		cfg.K, cfg.Gamma, cfg.Seed = o.K, o.Gamma, o.Seed
	}
	st, err := segstore.Open(o.SnapDir, cfg)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if det != nil && det.N() > 0 {
		if err := st.Bootstrap(det); err != nil {
			return nil, fmt.Errorf("bootstrap: %w", err)
		}
	}
	s.store = st
	s.stager = segstore.NewStager(st)
	s.append = s.stager.Append
	s.initAlerts(o.MaxSubs, o.AlertQueue)
	s.ready.Store(true)
	return s, nil
}

// seedDetector produces the detector the store is bootstrapped from, or nil
// for an empty (-k) start. Precedence: legacy snapshot (the directory's
// prior life under the whole-detector checkpoint scheme), saved sketch,
// dataset file, demo stream.
func seedDetector(o serverOpts) (*histburst.Detector, error) {
	if o.SnapDir != "" {
		st, err := openSnapStore(o.SnapDir, o.Retain)
		if err != nil {
			return nil, fmt.Errorf("snapshots: %w", err)
		}
		det, name, ok, err := st.recover(o.Logf)
		if err != nil {
			return nil, fmt.Errorf("snapshots: %w", err)
		}
		if ok {
			o.Logf("burstd: migrating legacy snapshot %s (%d elements) into the segment store", name, det.N())
			return det, nil
		}
	}
	if o.Sketch != "" {
		return histburst.LoadFile(o.Sketch)
	}
	if o.K > 0 {
		return nil, nil
	}
	var data stream.Stream
	if o.In != "" {
		f, err := os.Open(o.In)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		data, err = stream.Read(f)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		data, err = workload.Generate(workload.OlympicRioSpec(o.Seed, o.N))
		if err != nil {
			return nil, err
		}
	}
	k := uint64(1)
	for _, el := range data {
		if el.Event+1 > k {
			k = el.Event + 1
		}
	}
	det, err := histburst.New(k, histburst.WithPBE2(o.Gamma), histburst.WithSeed(o.Seed))
	if err != nil {
		return nil, err
	}
	for _, el := range data {
		det.Append(el.Event, el.Time)
	}
	det.Finish()
	return det, nil
}

// handler assembles the full middleware stack: panic recovery outermost,
// then per-route registration. Query and ingest routes sit behind the
// load-shedding semaphore; health probes never shed.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	limited := func(h http.HandlerFunc) http.Handler { return s.limit(h) }
	mux.Handle("GET /v1/burstiness", limited(s.handleBurstiness))
	mux.Handle("GET /v1/times", limited(s.handleTimes))
	mux.Handle("GET /v1/events", limited(s.handleEvents))
	mux.Handle("GET /v1/top", limited(s.handleTop))
	mux.Handle("GET /v1/stats", limited(s.handleStats))
	mux.Handle("GET /v1/segments", limited(s.handleSegments))
	mux.Handle("POST /v1/query/batch", limited(s.handleQueryBatch))
	mux.Handle("POST /v1/append", limited(s.handleAppend))
	mux.Handle("POST /v1/subscriptions", limited(s.handleSubscribe))
	mux.Handle("GET /v1/subscriptions", limited(s.handleSubscriptionsList))
	mux.Handle("DELETE /v1/subscriptions/{id}", limited(s.handleUnsubscribe))
	// The alert stream is long-lived and must not pin an inflight slot; its
	// bounded per-subscriber queue already caps what a stream can cost.
	mux.HandleFunc("GET /v1/alerts/stream", s.handleAlertStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /{$}", s.handleUI)
	return s.recoverPanics(mux)
}

// routes is kept for compatibility with older tests/tools; it returns the
// fully assembled handler.
func (s *server) routes() http.Handler { return s.handler() }

// recoverPanics turns a handler panic into a 500 instead of tearing down
// the whole connection (and, under http.Serve, killing nothing else — but
// the stack trace would be lost in the noise).
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.logf("burstd: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limit sheds load once MaxInflight requests are already in flight,
// answering 503 with a Retry-After hint instead of queueing unboundedly.
func (s *server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server overloaded"))
		}
	})
}

// retryAfter is the current Retry-After hint: the write path's live backoff,
// never below one second.
func (s *server) retryAfter() time.Duration {
	d := time.Duration(s.retryHint.Load())
	if d < time.Second {
		d = time.Second
	}
	return d
}

// retryAfterSeconds renders the hint for the HTTP Retry-After header,
// rounding partial seconds up (the header speaks whole seconds).
func (s *server) retryAfterSeconds() string {
	d := s.retryAfter()
	secs := int64((d + time.Second - 1) / time.Second)
	return strconv.FormatInt(secs, 10)
}

// healthBody is the shared health surface of /healthz and /readyz: store
// self-diagnosis (WAL lag, quarantine count, scrub state) plus the serving
// flags.
func (s *server) healthBody(status string) map[string]any {
	h := s.store.Health()
	return map[string]any{
		"status":   status,
		"ready":    s.ready.Load(),
		"readOnly": s.readOnly.Load(),
		"store":    h,
		"tiers":    s.store.Snapshot().Tiers(),
		"alerts":   s.alerts.hub.Stats(),
	}
}

// handleHealthz is the liveness probe: always 200 while the process serves
// (queries keep working even degraded), with the health detail in the body.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.readOnly.Load() || s.store.Health().Quarantined > 0 {
		status = "degraded"
	}
	writeJSON(w, s.healthBody(status))
}

// handleReadyz is the readiness probe. 503 while starting or draining (as
// before) and also while the store cannot accept writes — read-only after
// a disk fault, or wedged on a sticky background error — so load balancers
// stop routing ingest here. The body always carries the full health detail
// (quarantine count, WAL lag) either way.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !s.ready.Load():
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(s.healthBody("not ready")) //histburst:allow errdrop -- probe response; nothing to recover
	case s.readOnly.Load():
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(s.healthBody("read-only")) //histburst:allow errdrop -- probe response; nothing to recover
	case s.store.Err() != nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(s.healthBody("store error")) //histburst:allow errdrop -- probe response; nothing to recover
	default:
		writeJSON(w, s.healthBody("ready"))
	}
}

// appendRequest is the /v1/append body: a batch of (event, time) elements.
// Elements are applied in order; the store refuses timestamps behind its
// frontier (unlike the old clamping detector), so each rejected element is
// counted and skipped rather than failing the batch.
type appendRequest struct {
	Elements []appendElement `json:"elements"`
}

type appendElement struct {
	Event uint64 `json:"event"`
	Time  int64  `json:"time"`
}

// maxAppendBody bounds an ingest request body; ~8 MB is far beyond any
// sane batch and keeps a hostile client from ballooning the heap.
const maxAppendBody = 8 << 20

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	body := http.MaxBytesReader(w, r.Body, maxAppendBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Elements) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	elems := make(stream.Stream, len(req.Elements))
	for i, el := range req.Elements {
		elems[i] = stream.Element{Event: el.Event, Time: el.Time}
	}
	// The ingest seam applies the shared admission policy (draining,
	// read-only, retry/degrade) for both this handler and the wire
	// transport; here its verdict is mapped back onto HTTP status codes.
	res := s.ingest(elems)
	switch {
	case res.Refused != 0:
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("%s", res.Message))
	case res.Err != nil:
		httpError(w, http.StatusInternalServerError, res.Err)
	default:
		writeJSON(w, map[string]any{
			"appended": res.Appended, "rejected": res.Rejected,
			"elements": res.Elements, "outOfOrder": res.OutOfOrder,
		})
	}
}

// ingest drives one decoded batch through the admission policy shared by
// the HTTP append handler and the wire transport: refuse while draining or
// read-only, retry disk faults with backoff, degrade on a persistent fault.
// Keeping both transports on this one seam is what makes their semantics
// identical by construction.
func (s *server) ingest(elems stream.Stream) wire.IngestResult {
	if !s.ready.Load() {
		return wire.IngestResult{
			Refused: wire.NackDraining, RetryAfter: s.retryAfter(),
			Message: "shutting down",
		}
	}
	if s.readOnly.Load() {
		return wire.IngestResult{
			Refused: wire.NackReadOnly, RetryAfter: s.retryAfter(),
			Message: "store is read-only after a disk fault; queries keep serving",
		}
	}
	// The stager shards staging across CPUs and group-commits staged batches
	// into the head in timestamp order, so concurrent ingest requests no
	// longer serialize on one head mutex per element.
	res := s.appendWithRetry(elems)
	if res.Err != nil {
		if isDiskFault(res.Err) {
			s.enterReadOnly(res.Err)
			return wire.IngestResult{
				Refused: wire.NackReadOnly, RetryAfter: s.retryAfter(),
				Message: fmt.Sprintf("store is read-only after a disk fault: %v", res.Err),
			}
		}
		return wire.IngestResult{Err: res.Err}
	}
	if res.Appended > 0 {
		s.dirty.Store(true)
	}
	return wire.IngestResult{
		Appended: res.Appended, Rejected: res.Rejected,
		Elements: s.store.N(), OutOfOrder: s.store.Rejected(),
	}
}

// appendWithRetry drives one batch through the append func, retrying disk
// faults with capped exponential backoff — a filling disk is often a
// transient (log rotation racing a cleanup); only a fault that survives
// the whole budget degrades the server. The backoff it experiences feeds
// the server's Retry-After hint: a success resets the hint to the floor,
// each retry raises it to the sleep it is about to take, and giving up
// leaves it at the next (unslept) rung — the server's best estimate of how
// long a client should wait before trying again.
func (s *server) appendWithRetry(elems stream.Stream) segstore.BatchResult {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		res := s.append(elems)
		if res.Err == nil {
			s.retryHint.Store(int64(time.Second))
			return res
		}
		if !isDiskFault(res.Err) {
			return res
		}
		s.retryHint.Store(int64(backoff))
		if attempt == 3 {
			return res
		}
		s.logf("burstd: append hit a disk fault (attempt %d, retrying in %s): %v", attempt+1, backoff, res.Err)
		time.Sleep(backoff)
		backoff *= 4
	}
}

// isDiskFault reports whether err is the kind of environmental disk
// failure degraded mode exists for — out of space or I/O error — as
// opposed to a logic error that retrying cannot help.
func isDiskFault(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO)
}

// enterReadOnly flips the server read-only and starts the recovery prober:
// a goroutine that periodically asks the store to sync its WAL, and
// restores write service on the first success. Queries are untouched. The
// prober exits on recovery or when ready flips false at drain; the probing
// flag guarantees at most one is live.
//
//histburst:worker probing
func (s *server) enterReadOnly(cause error) {
	if s.readOnly.Swap(true) {
		return // already degraded; the running prober owns recovery
	}
	s.logf("burstd: entering read-only mode (appends 503, queries serving): %v", cause)
	if s.probing.Swap(true) {
		return
	}
	go func() {
		defer s.probing.Store(false)
		tick := time.NewTicker(s.probeEvery)
		defer tick.Stop()
		for range tick.C {
			if !s.ready.Load() {
				return // draining; stay read-only to the end
			}
			if err := s.store.SyncWAL(); err != nil {
				continue
			}
			s.readOnly.Store(false)
			s.logf("burstd: disk recovered; leaving read-only mode")
			return
		}
	}()
}

// checkpoint makes everything ingested so far durable by sealing the head
// into the manifest-referenced segment directory — the store's replacement
// for the deprecated whole-detector snapshot write. Periodic calls (force
// false) skip when nothing was appended since the last one and leave the
// frontier timestamp's elements in memory so sealed boundaries stay
// compactable; force seals the entire head (shutdown). The returned name
// describes what became durable ("" for a skipped no-op).
func (s *server) checkpoint(force bool) (string, error) {
	if !s.dirty.Swap(false) && !force {
		return "", nil
	}
	before := s.store.Generation()
	if err := s.store.Checkpoint(force); err != nil {
		return "", err
	}
	after := s.store.Generation()
	if after == before {
		return "", nil
	}
	return fmt.Sprintf("generation %d", after), nil
}

func (s *server) handleBurstiness(w http.ResponseWriter, r *http.Request) {
	e, err1 := paramUint(r, "e")
	t, err2 := paramInt(r, "t")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sn := s.store.Snapshot()
	b, err := sn.Burstiness(e, t, tau)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, addEnvelope(map[string]any{"event": e, "t": t, "tau": tau, "burstiness": b}, sn, t))
}

// addEnvelope attaches the widened error envelope to a query response when
// the history at t is degraded (quarantined spans below t): the answer
// still stands over the surviving history, and the caller sees what is
// missing instead of mistaking it for the whole.
func addEnvelope(resp map[string]any, sn *segstore.Snapshot, t int64) map[string]any {
	if env := sn.Envelope(t); env.Degraded {
		resp["envelope"] = env
	}
	return resp
}

func (s *server) handleTimes(w http.ResponseWriter, r *http.Request) {
	e, err1 := paramUint(r, "e")
	theta, err2 := paramFloat(r, "theta")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sn := s.store.Snapshot()
	ranges, err := sn.BurstyTimes(e, theta, tau)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, addEnvelope(map[string]any{"event": e, "theta": theta, "tau": tau, "ranges": ranges}, sn, sn.MaxTime()))
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, err1 := paramInt(r, "t")
	theta, err2 := paramFloat(r, "theta")
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if theta <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("threshold must be positive, got %v", theta))
		return
	}
	sn := s.store.Snapshot()
	ids, err := sn.BurstyEvents(t, theta, tau)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type hit struct {
		Event      uint64  `json:"event"`
		Burstiness float64 `json:"burstiness"`
	}
	hits := make([]hit, 0, len(ids))
	for _, id := range ids {
		b, err := sn.Burstiness(id, t, tau)
		if err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("scoring event %d: %w", id, err))
			return
		}
		hits = append(hits, hit{Event: id, Burstiness: b})
	}
	writeJSON(w, addEnvelope(map[string]any{"t": t, "theta": theta, "tau": tau, "events": hits}, sn, t))
}

func (s *server) handleTop(w http.ResponseWriter, r *http.Request) {
	t, err1 := paramInt(r, "t")
	k, err2 := paramIntDefault(r, "k", 10)
	tau, err3 := paramIntDefault(r, "tau", 86_400)
	if err := firstErr(err1, err2, err3); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if k <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be positive, got %d", k))
		return
	}
	sn := s.store.Snapshot()
	top, err := sn.TopBursty(t, int(k), tau)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, addEnvelope(map[string]any{"t": t, "k": k, "tau": tau, "events": top}, sn, t))
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	h := s.store.Health()
	writeJSON(w, map[string]any{
		"elements":    sn.N(),
		"eventSpace":  s.store.K(),
		"maxTime":     sn.MaxTime(),
		"bytes":       sn.Bytes(),
		"outOfOrder":  s.store.Rejected(),
		"generation":  sn.Generation(),
		"segments":    len(sn.Segments()),
		"quarantined": h.Quarantined,
		"wal":         h.WAL,
		"readOnly":    s.readOnly.Load(),
		"head":        sn.Head(),
		"alerts":      s.alerts.hub.Stats(),
	})
}

// handleSegments serves the segment directory: one record per sealed
// segment in time order, the quarantined segments (history removed from
// service for damage), and the in-memory head — the introspection view of
// the store's lifecycle and health.
func (s *server) handleSegments(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	h := s.store.Health()
	writeJSON(w, map[string]any{
		"generation":  sn.Generation(),
		"segments":    sn.Segments(),
		"tiers":       sn.Tiers(),
		"quarantined": sn.Quarantined(),
		"wal":         h.WAL,
		"readOnly":    s.readOnly.Load(),
		"envelope":    sn.Envelope(sn.MaxTime()),
		"head":        sn.Head(),
		"alerts":      s.alerts.hub.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("burstd: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //histburst:allow errdrop -- already reporting an error; a failed write has no further recovery
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func paramUint(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseUint(v, 10, 64)
}

func paramInt(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseInt(v, 10, 64)
}

func paramIntDefault(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseInt(v, 10, 64)
}

func paramFloat(r *http.Request, name string) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseFloat(v, 64)
}
