package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"histburst"
)

// A snapStore manages the snapshot directory: sequence-numbered detector
// files written atomically, pruned to a retention count, and scanned
// newest-first at startup so recovery always lands on the most recent
// intact snapshot no matter where a crash interrupted a write.
//
// Layout: snap-<seq>.hbsk with a zero-padded 16-digit decimal sequence
// number (lexical order == numeric order, so directory listings sort).
// In-flight writes use snap-<seq>.hbsk.tmp-* names; leftovers from crashes
// are swept on open.
type snapStore struct {
	dir    string
	retain int
	seq    uint64 // next sequence number to write
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".hbsk"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }

// parseSnapName extracts the sequence number from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(digits) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// openSnapStore prepares dir (created if absent), sweeps temp files left by
// crashed writes, and positions the sequence counter after the newest
// existing snapshot — even a corrupt one, so a retried write never
// overwrites the evidence.
func openSnapStore(dir string, retain int) (*snapStore, error) {
	if retain < 1 {
		return nil, fmt.Errorf("snapshot retention must be at least 1, got %d", retain)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &snapStore{dir: dir, retain: retain}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, snapSuffix+".tmp-") {
			os.Remove(filepath.Join(dir, name)) //histburst:allow errdrop -- best-effort cleanup of a stale temp file
			continue
		}
		if seq, ok := parseSnapName(name); ok && seq >= st.seq {
			st.seq = seq + 1
		}
	}
	return st, nil
}

// list returns the snapshot file names present, newest first.
func (st *snapStore) list() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSnapName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// recover scans snapshots newest-first and returns the first one that
// loads, skipping past corrupt or truncated files (each skip is reported
// through logf). ok is false when no loadable snapshot exists.
func (st *snapStore) recover(logf func(format string, args ...any)) (det *histburst.Detector, name string, ok bool, err error) {
	names, err := st.list()
	if err != nil {
		return nil, "", false, err
	}
	for _, n := range names {
		d, err := histburst.LoadFile(filepath.Join(st.dir, n))
		if err != nil {
			logf("burstd: skipping corrupt snapshot %s: %v", n, err)
			continue
		}
		return d, n, true, nil
	}
	return nil, "", false, nil
}

// write persists one encoded detector as the next snapshot, atomically
// (temp file in the same directory → fsync → rename), then prunes old
// snapshots beyond the retention count. Pruning failures are non-fatal: an
// extra old snapshot is clutter, not corruption.
func (st *snapStore) write(data []byte) (string, error) {
	name := snapName(st.seq)
	path := filepath.Join(st.dir, name)
	tmp, err := os.CreateTemp(st.dir, name+".tmp-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, error) {
		tmp.Close()        //histburst:allow errdrop -- best-effort cleanup; the write error takes precedence
		os.Remove(tmpName) //histburst:allow errdrop -- best-effort cleanup; the write error takes precedence
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //histburst:allow errdrop -- best-effort cleanup; the close error takes precedence
		return "", err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //histburst:allow errdrop -- best-effort cleanup; the rename error takes precedence
		return "", err
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()  //histburst:allow errdrop -- directory fsync is advisory; the data file is already synced
		d.Close() //histburst:allow errdrop -- read-only directory handle
	}
	st.seq++
	st.prune()
	return name, nil
}

// prune removes the oldest snapshots beyond the retention count.
func (st *snapStore) prune() {
	names, err := st.list()
	if err != nil {
		return
	}
	for _, n := range names[min(st.retain, len(names)):] {
		os.Remove(filepath.Join(st.dir, n)) //histburst:allow errdrop -- best-effort retention pruning; a survivor is retried next cycle
	}
}
