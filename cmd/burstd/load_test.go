package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"histburst/internal/loadgen"
)

// Sustained-load smoke over both transports against an in-process burstd:
// a short mixed closed-loop run plus an open-loop flash, asserting the
// serving path completes work on every op kind without errors. `make
// load-smoke` runs this; BURSTLOAD_SMOKE_MS stretches the per-run length.

func smokeDuration() time.Duration {
	if ms := os.Getenv("BURSTLOAD_SMOKE_MS"); ms != "" {
		var n int
		if _, err := fmt.Sscanf(ms, "%d", &n); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return 500 * time.Millisecond
}

// loadTargets builds one loadgen target per transport over srv, each with
// its own profile clocked at the live frontier.
func loadTargets(t *testing.T, srv *server, workers int) map[string]loadgen.Target {
	t.Helper()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	events := make([]uint64, 64)
	for i := range events {
		events[i] = uint64(i % 16)
	}
	mk := func() *loadgen.Profile {
		p := &loadgen.Profile{Events: events, Tau: 86_400, Theta: 100,
			AppendBatch: 64, PointBatch: 8, K: srv.store.K()}
		p.StartClock(srv.store.MaxTime() + 1)
		p.MaxT = srv.store.MaxTime()
		return p
	}
	wt, err := loadgen.DialWire(wl.Addr().String(), workers, 5*time.Second, mk())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wt.Close)
	ht := &loadgen.HTTPTarget{
		Base:   ts.URL,
		Client: &http.Client{Timeout: 10 * time.Second},
		P:      mk(),
	}
	t.Cleanup(ht.Close)
	return map[string]loadgen.Target{"http": ht, "wire": wt}
}

func TestServingLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load run")
	}
	srv := demoServer(t)
	dur := smokeDuration()
	for name, tgt := range loadTargets(t, srv, 4) {
		t.Run(name, func(t *testing.T) {
			// Re-clock the profile at the live frontier: the other
			// transport's subtest may have advanced it since the targets
			// were built, and a profile stuck behind the frontier gets
			// every append — including the subscribe bursts — rejected.
			if f, ok := tgt.(interface{ Frontier() error }); ok {
				if err := f.Frontier(); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := loadgen.Run(loadgen.Config{
				Duration: dur, Workers: 4,
				Mix:  loadgen.Mix{Append: 1, Point: 4, Bursty: 1, Subscribe: 1},
				Seed: 7,
			}, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d of %d ops errored", rep.Errors, rep.Ops)
			}
			for _, kind := range loadgen.Kinds {
				ks := rep.Kinds[kind]
				if ks == nil || ks.Ops == 0 {
					t.Fatalf("op kind %s never ran (%d total ops)", kind, rep.Ops)
				}
				if ks.P99Ns <= 0 {
					t.Fatalf("%s: empty latency record %+v", kind, ks)
				}
			}
			// Every subscribe op that committed its burst awaited a real
			// alert delivery, so the pseudo-kind must have samples.
			if al := rep.Kinds[loadgen.KindAlert]; al == nil || al.Ops == 0 {
				t.Fatalf("subscribe ops ran but no alert latencies were recorded")
			}
		})
	}
	// Open-loop flash: a fixed arrival schedule against the wire transport,
	// proving the pacer and the credit window coexist.
	wt := loadTargets(t, srv, 4)["wire"]
	rep, err := loadgen.Run(loadgen.Config{
		Duration: dur, Workers: 4, Rate: 200,
		Mix:  loadgen.Mix{Append: 1, Point: 4, Bursty: 1},
		Seed: 11,
	}, wt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Ops == 0 {
		t.Fatalf("open loop: %d ops, %d errors", rep.Ops, rep.Errors)
	}
}

// recordTarget builds one transport target against its own fresh server,
// so a measured run never inherits the store another transport grew.
func recordTarget(t *testing.T, name string, workers, appendBatch, pointBatch int) loadgen.Target {
	t.Helper()
	srv := demoServer(t)
	events := make([]uint64, 64)
	for i := range events {
		events[i] = uint64(i % 16)
	}
	p := &loadgen.Profile{Events: events, Tau: 86_400, Theta: 100,
		AppendBatch: appendBatch, PointBatch: pointBatch, K: srv.store.K()}
	p.StartClock(srv.store.MaxTime() + 1)
	p.MaxT = srv.store.MaxTime()
	if name == "http" {
		ts := httptest.NewServer(srv.handler())
		t.Cleanup(ts.Close)
		ht := &loadgen.HTTPTarget{
			Base:   ts.URL,
			Client: &http.Client{Timeout: 10 * time.Second},
			P:      p,
		}
		t.Cleanup(ht.Close)
		return ht
	}
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	wt, err := loadgen.DialWire(wl.Addr().String(), workers, 5*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wt.Close)
	return wt
}

// TestServingLatencyRecord is the BENCH_PR7 measurement, not a test: with
// BURSTLOAD_RECORD=1 it runs closed-loop comparisons on both transports and
// prints go-bench-style rows for cmd/benchjson (`make bench-json` pipes
// them into the PR record next to the segstore microbenchmarks).
//
// Two runs per transport, each against a fresh server: a mixed
// append+point run (the headline ingest-vs-query contention numbers) and a
// pure bursty run. Bursty is measured separately because a bursty scan is
// a multi-ms CPU-bound walk of the whole history — interleaving it with
// the mixed run puts the scan duration into *both* transports' point p99
// on a small box (the queries wait on the CPU, not the wire), which
// records scheduler contention, not serving cost.
func TestServingLatencyRecord(t *testing.T) {
	if os.Getenv("BURSTLOAD_RECORD") == "" {
		t.Skip("set BURSTLOAD_RECORD=1 to measure")
	}
	runs := []struct {
		mix loadgen.Mix
		dur time.Duration
	}{
		{loadgen.Mix{Append: 1, Point: 4}, 3 * time.Second},
		{loadgen.Mix{Bursty: 1}, 2 * time.Second},
		{loadgen.Mix{Subscribe: 1}, 2 * time.Second},
	}
	for _, name := range []string{"http", "wire"} {
		for _, r := range runs {
			tgt := recordTarget(t, name, 2, 256, 32)
			rep, err := loadgen.Run(loadgen.Config{
				Duration: r.dur, Workers: 2, Mix: r.mix, Seed: 7,
			}, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%s %+v: %d of %d ops errored", name, r.mix, rep.Errors, rep.Ops)
			}
			for _, line := range rep.BenchLines(name) {
				fmt.Println(line)
			}
		}
	}
	// The stalled-subscriber comparison: append throughput with no alerting
	// armed vs. with an armed standing query whose SSE consumer never reads.
	// Alternating best-of-3 pairs for the same reason benchjson keeps the
	// min-of-N floor: a single closed-loop run wanders with the container's
	// neighbors, and this pair's *ratio* is the headline claim.
	var base, stalled float64
	for i := 0; i < 3; i++ {
		if v := measureAppendThroughput(t, false, 2*time.Second); v > base {
			base = v
		}
		if v := measureAppendThroughput(t, true, 2*time.Second); v > stalled {
			stalled = v
		}
	}
	fmt.Printf("BenchmarkServe/http/append_baseline/throughput 1 %.0f ns/op\n", 1e9/base)
	fmt.Printf("BenchmarkServe/http/append_stalled_sse/throughput 1 %.0f ns/op\n", 1e9/stalled)
}

// measureAppendThroughput runs an append-only closed loop against a fresh
// server and reports the achieved ops/sec. With withStalledSSE, a standing
// query over the whole append population is armed first and a firehose SSE
// stream is opened and never read — the commit hook then touches the
// subscription on every batch while the subscriber's queue sheds.
func measureAppendThroughput(t *testing.T, withStalledSSE bool, dur time.Duration) float64 {
	t.Helper()
	srv := demoServer(t)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	if withStalledSSE {
		var ids []string
		for e := 0; e < 16; e++ {
			ids = append(ids, fmt.Sprintf("%d", e))
		}
		postSubscription(t, ts.URL, `{"events":[`+strings.Join(ids, ",")+`],"theta":1,"tau":86400}`)
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
	}
	events := make([]uint64, 64)
	for i := range events {
		events[i] = uint64(i % 16)
	}
	p := &loadgen.Profile{Events: events, Tau: 86_400, Theta: 100, AppendBatch: 64}
	p.StartClock(srv.store.MaxTime() + 1)
	p.MaxT = srv.store.MaxTime()
	tgt := &loadgen.HTTPTarget{Base: ts.URL, Client: &http.Client{Timeout: 10 * time.Second}, P: p}
	t.Cleanup(tgt.Close)
	rep, err := loadgen.Run(loadgen.Config{
		Duration: dur, Workers: 4, Mix: loadgen.Mix{Append: 1}, Seed: 7,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("append run (stalled=%v): %d of %d ops errored", withStalledSSE, rep.Errors, rep.Ops)
	}
	return rep.Kinds[loadgen.KindAppend].OpsPerSec
}

// TestStalledSSESubscriberThroughputFloor is the loose in-tree guard for
// the claim BENCH_PR9.json records precisely: an armed standing query with
// a stalled SSE consumer must not gut append throughput. The bound is 50%,
// not 95% — short smoke runs on a noisy box swing far more than the
// multi-second measured runs do.
func TestStalledSSESubscriberThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load run")
	}
	dur := smokeDuration()
	base := measureAppendThroughput(t, false, dur)
	stalled := measureAppendThroughput(t, true, dur)
	if stalled < base/2 {
		t.Fatalf("stalled SSE subscriber cut append throughput from %.0f to %.0f ops/s (>50%%)", base, stalled)
	}
}
