package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"histburst/internal/loadgen"
)

// Sustained-load smoke over both transports against an in-process burstd:
// a short mixed closed-loop run plus an open-loop flash, asserting the
// serving path completes work on every op kind without errors. `make
// load-smoke` runs this; BURSTLOAD_SMOKE_MS stretches the per-run length.

func smokeDuration() time.Duration {
	if ms := os.Getenv("BURSTLOAD_SMOKE_MS"); ms != "" {
		var n int
		if _, err := fmt.Sscanf(ms, "%d", &n); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return 500 * time.Millisecond
}

// loadTargets builds one loadgen target per transport over srv, each with
// its own profile clocked at the live frontier.
func loadTargets(t *testing.T, srv *server, workers int) map[string]loadgen.Target {
	t.Helper()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	events := make([]uint64, 64)
	for i := range events {
		events[i] = uint64(i % 16)
	}
	mk := func() *loadgen.Profile {
		p := &loadgen.Profile{Events: events, Tau: 86_400, Theta: 100,
			AppendBatch: 64, PointBatch: 8}
		p.StartClock(srv.store.MaxTime() + 1)
		p.MaxT = srv.store.MaxTime()
		return p
	}
	wt, err := loadgen.DialWire(wl.Addr().String(), workers, 5*time.Second, mk())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wt.Close)
	return map[string]loadgen.Target{
		"http": &loadgen.HTTPTarget{
			Base:   ts.URL,
			Client: &http.Client{Timeout: 10 * time.Second},
			P:      mk(),
		},
		"wire": wt,
	}
}

func TestServingLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load run")
	}
	srv := demoServer(t)
	dur := smokeDuration()
	for name, tgt := range loadTargets(t, srv, 4) {
		t.Run(name, func(t *testing.T) {
			rep, err := loadgen.Run(loadgen.Config{
				Duration: dur, Workers: 4,
				Mix:  loadgen.Mix{Append: 1, Point: 4, Bursty: 1},
				Seed: 7,
			}, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d of %d ops errored", rep.Errors, rep.Ops)
			}
			for _, kind := range loadgen.Kinds {
				ks := rep.Kinds[kind]
				if ks == nil || ks.Ops == 0 {
					t.Fatalf("op kind %s never ran (%d total ops)", kind, rep.Ops)
				}
				if ks.P99Ns <= 0 {
					t.Fatalf("%s: empty latency record %+v", kind, ks)
				}
			}
		})
	}
	// Open-loop flash: a fixed arrival schedule against the wire transport,
	// proving the pacer and the credit window coexist.
	wt := loadTargets(t, srv, 4)["wire"]
	rep, err := loadgen.Run(loadgen.Config{
		Duration: dur, Workers: 4, Rate: 200,
		Mix:  loadgen.Mix{Append: 1, Point: 4, Bursty: 1},
		Seed: 11,
	}, wt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Ops == 0 {
		t.Fatalf("open loop: %d ops, %d errors", rep.Ops, rep.Errors)
	}
}

// recordTarget builds one transport target against its own fresh server,
// so a measured run never inherits the store another transport grew.
func recordTarget(t *testing.T, name string, workers, appendBatch, pointBatch int) loadgen.Target {
	t.Helper()
	srv := demoServer(t)
	events := make([]uint64, 64)
	for i := range events {
		events[i] = uint64(i % 16)
	}
	p := &loadgen.Profile{Events: events, Tau: 86_400, Theta: 100,
		AppendBatch: appendBatch, PointBatch: pointBatch}
	p.StartClock(srv.store.MaxTime() + 1)
	p.MaxT = srv.store.MaxTime()
	if name == "http" {
		ts := httptest.NewServer(srv.handler())
		t.Cleanup(ts.Close)
		return &loadgen.HTTPTarget{
			Base:   ts.URL,
			Client: &http.Client{Timeout: 10 * time.Second},
			P:      p,
		}
	}
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	wt, err := loadgen.DialWire(wl.Addr().String(), workers, 5*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wt.Close)
	return wt
}

// TestServingLatencyRecord is the BENCH_PR7 measurement, not a test: with
// BURSTLOAD_RECORD=1 it runs closed-loop comparisons on both transports and
// prints go-bench-style rows for cmd/benchjson (`make bench-json` pipes
// them into the PR record next to the segstore microbenchmarks).
//
// Two runs per transport, each against a fresh server: a mixed
// append+point run (the headline ingest-vs-query contention numbers) and a
// pure bursty run. Bursty is measured separately because a bursty scan is
// a multi-ms CPU-bound walk of the whole history — interleaving it with
// the mixed run puts the scan duration into *both* transports' point p99
// on a small box (the queries wait on the CPU, not the wire), which
// records scheduler contention, not serving cost.
func TestServingLatencyRecord(t *testing.T) {
	if os.Getenv("BURSTLOAD_RECORD") == "" {
		t.Skip("set BURSTLOAD_RECORD=1 to measure")
	}
	runs := []struct {
		mix loadgen.Mix
		dur time.Duration
	}{
		{loadgen.Mix{Append: 1, Point: 4}, 3 * time.Second},
		{loadgen.Mix{Bursty: 1}, 2 * time.Second},
	}
	for _, name := range []string{"http", "wire"} {
		for _, r := range runs {
			tgt := recordTarget(t, name, 2, 256, 32)
			rep, err := loadgen.Run(loadgen.Config{
				Duration: r.dur, Workers: 2, Mix: r.mix, Seed: 7,
			}, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Errors != 0 {
				t.Fatalf("%s %+v: %d of %d ops errored", name, r.mix, rep.Errors, rep.Ops)
			}
			for _, line := range rep.BenchLines(name) {
				fmt.Println(line)
			}
		}
	}
}
