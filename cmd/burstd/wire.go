package main

import (
	"net"
	"net/http"
	"net/http/pprof"

	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/wire"
)

// The wire.Backend implementation: the HBP1 listener fronts the same store
// snapshot accessors and ingest seam the HTTP handlers use, so the two
// transports cannot drift apart semantically.

// Snapshot returns the store view wire queries run against.
func (s *server) Snapshot() *segstore.Snapshot { return s.store.Snapshot() }

// Ingest drives one wire append batch through the shared admission policy.
func (s *server) Ingest(elems stream.Stream) wire.IngestResult { return s.ingest(elems) }

// Stats mirrors the serving fields of GET /v1/stats for STATS frames.
func (s *server) Stats() wire.Stats {
	sn := s.store.Snapshot()
	h := s.store.Health()
	return wire.Stats{
		Elements:    sn.N(),
		EventSpace:  s.store.K(),
		MaxTime:     sn.MaxTime(),
		Bytes:       int64(sn.Bytes()),
		OutOfOrder:  s.store.Rejected(),
		Generation:  sn.Generation(),
		Segments:    len(sn.Segments()),
		Quarantined: h.Quarantined,
		ReadOnly:    s.readOnly.Load(),
		HeadElems:   sn.Head().Elements,
	}
}

// wireServer builds the HBP1 server fronting this burstd instance.
func (s *server) wireServer() *wire.Server {
	return &wire.Server{Backend: s, Logf: s.logf}
}

// wireListener couples an HBP1 server to its TCP listener so shutdown can
// tear both down.
type wireListener struct {
	ws *wire.Server
	ln net.Listener
}

// listenWire starts the HBP1 listener on addr, serving srv's store. The
// serve goroutine exits when Close (or Drain) tears the listener down.
//
//histburst:worker Close
func listenWire(srv *server, addr string) (*wireListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ws := srv.wireServer()
	go func() {
		if err := ws.Serve(ln); err != nil {
			srv.logf("burstd: wire listener: %v", err)
		}
	}()
	return &wireListener{ws: ws, ln: ln}, nil
}

func (w *wireListener) Addr() net.Addr { return w.ln.Addr() }

// Drain stops accepting new wire connections while live ones keep serving
// through the shutdown drain window — their in-flight appends are answered
// with NACK(draining) + Retry-After by the shared ingest seam rather than
// a connection reset, mirroring the HTTP drain.
func (w *wireListener) Drain() {
	w.ws.Drain()
	w.ln.Close() //histburst:allow errdrop -- drain teardown; nothing to recover
}

// Close stops accepting and drops every live wire connection.
func (w *wireListener) Close() {
	w.ws.Close()
	w.ln.Close() //histburst:allow errdrop -- shutdown teardown; nothing to recover
}

// debugHandler serves net/http/pprof on the separate -debug-addr listener.
// The profiling routes are registered on a private mux rather than imported
// for DefaultServeMux's side effect, so the public serving mux never
// exposes them.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
