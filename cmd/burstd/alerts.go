package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/subscribe"
)

// The standing-query (alerting) subsystem: POST /v1/subscriptions arms a
// (event-set, θ, τ) triple, the Stager's commit hook evaluates every
// committed batch against the armed set, and fired alerts fan out over SSE
// (GET /v1/alerts/stream), webhooks, and unsolicited wire ALERT frames.
// Every channel is a bounded drop-oldest queue, so a stalled consumer loses
// its own alerts and never backpressures ingest.

// alerting bundles the server's standing-query state.
type alerting struct {
	hub *subscribe.Hub

	mu       sync.Mutex
	webhooks map[uint64]*subscribe.Queue // subscription id → its webhook queue, guarded by mu
	wg       sync.WaitGroup              // joins webhook workers
}

// initAlerts builds the hub and hooks it into the stager's group-commit
// path. The evaluator runs under the stager's sequencer lock, so commits
// reach it in order and each batch is evaluated exactly once; its fan-out
// never blocks, which is what makes the hook safe on the hot path.
func (s *server) initAlerts(maxSubs, queueCap int) {
	s.alerts.hub = subscribe.NewHub(subscribe.Config{
		MaxSubs:  maxSubs,
		QueueCap: queueCap,
		// The sketch folds event ids modulo K; folding subscriptions the
		// same way keeps "watch event e" aligned with what the store counts.
		Fold: func(e uint64) uint64 { return e % s.store.K() },
		Envelope: func(t int64) *segstore.ErrorEnvelope {
			if env := s.store.Snapshot().Envelope(t); env.Degraded {
				return &env
			}
			return nil
		},
	})
	hub := s.alerts.hub
	s.stager.SetCommitHook(func(committed stream.Stream, frontier int64) {
		hub.Evaluate(committed)
	})
}

// hub returns the standing-query hub for the wire Backend seam.
func (s *server) Alerts() *subscribe.Hub { return s.alerts.hub }

// closeAlerts shuts the alerting subsystem down: the hub closes every
// subscriber queue — unblocking SSE handlers mid-Pop and ending the wire
// alert pumps — and the webhook workers drain out. Call before the HTTP
// graceful shutdown, or streaming handlers would stall it.
func (s *server) closeAlerts() {
	if s.alerts.hub == nil {
		return
	}
	s.alerts.hub.Close()
	s.alerts.wg.Wait()
}

// maxSubscriptionBody bounds a subscription registration body.
const maxSubscriptionBody = 1 << 20

// handleSubscribe arms one standing query. A subscription carrying a
// webhook URL additionally gets a dedicated delivery worker whose lifetime
// is the subscription's.
//
//histburst:worker closeAlerts
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var sub subscribe.Subscription
	body := http.MaxBytesReader(w, r.Body, maxSubscriptionBody)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if sub.Webhook != "" {
		u, err := url.Parse(sub.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("webhook must be an absolute http(s) URL"))
			return
		}
	}
	reg, err := s.alerts.hub.Register(sub)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if reg.Webhook != "" {
		q := s.alerts.hub.Attach(subscribe.ChannelWebhook, 0)
		s.alerts.hub.Watch(q, reg.ID)
		s.alerts.mu.Lock()
		if s.alerts.webhooks == nil {
			s.alerts.webhooks = make(map[uint64]*subscribe.Queue)
		}
		s.alerts.webhooks[reg.ID] = q
		s.alerts.mu.Unlock()
		wh := subscribe.NewWebhook(reg.Webhook, q)
		wh.Logf = s.logf
		s.alerts.wg.Add(1)
		go func() {
			defer s.alerts.wg.Done()
			wh.Run()
		}()
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, reg)
}

// handleSubscriptionsList serves the armed subscriptions in id order.
func (s *server) handleSubscriptionsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"subscriptions": s.alerts.hub.List()})
}

// handleUnsubscribe disarms one standing query and stops its webhook
// worker, answering 404 for an id that is not armed.
func (s *server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id: %w", err))
		return
	}
	s.alerts.mu.Lock()
	q := s.alerts.webhooks[id]
	delete(s.alerts.webhooks, id)
	s.alerts.mu.Unlock()
	if q != nil {
		s.alerts.hub.Detach(q) // closes the queue; the worker drains out
	}
	if !s.alerts.hub.Unregister(id) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no subscription %d", id))
		return
	}
	writeJSON(w, map[string]any{"removed": id})
}

// handleAlertStream serves alerts over SSE. With ?ids=3,7 only those
// subscriptions' alerts are streamed; without, every fired alert is (the
// firehose). The route is registered outside the load-shedding semaphore —
// a long-lived stream would otherwise pin an inflight slot for its whole
// life — and the stream's own bounded queue already caps its cost.
func (s *server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	var q *subscribe.Queue
	if ids := r.URL.Query().Get("ids"); ids != "" {
		q = s.alerts.hub.Attach(subscribe.ChannelSSE, 0)
		for _, part := range strings.Split(ids, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				s.alerts.hub.Detach(q)
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad subscription id %q", part))
				return
			}
			s.alerts.hub.Watch(q, id)
		}
	} else {
		q = s.alerts.hub.AttachAll(subscribe.ChannelSSE, 0)
	}
	defer s.alerts.hub.Detach(q)

	// The server-wide write timeout would cut a healthy stream; lift it for
	// this response only (best-effort — an old ResponseWriter just keeps it).
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{}) //histburst:allow errdrop -- unsupported writers keep the server-wide deadline

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	if _, err := fmt.Fprint(w, ": alert stream\n\n"); err != nil {
		return
	}
	fl.Flush()

	stop := r.Context().Done()
	for {
		a, ok := q.Pop(stop)
		if !ok {
			return // client gone or hub shut down
		}
		if _, err := w.Write(sseEvent(a)); err != nil {
			return
		}
		fl.Flush()
	}
}

// sseEvent renders one alert as SSE frames: a gap event first when the
// subscriber's queue overflowed since the last delivery, then the alert
// itself with its id set to the hub sequence (clients resume counting from
// it after a reconnect).
func sseEvent(a subscribe.Alert) []byte {
	var b bytes.Buffer
	if a.Gap > 0 {
		fmt.Fprintf(&b, "event: gap\ndata: {\"dropped\":%d}\n\n", a.Gap)
	}
	data, err := json.Marshal(a)
	if err != nil {
		// An Alert is plain data; marshal cannot fail. Keep the stream
		// parseable regardless.
		fmt.Fprintf(&b, "event: error\ndata: {\"error\":%q}\n\n", err.Error())
		return b.Bytes()
	}
	fmt.Fprintf(&b, "id: %d\nevent: alert\ndata: %s\n\n", a.Seq, data)
	return b.Bytes()
}
