// Command burstd serves historical burstiness queries over HTTP — the
// repository's analogue of the estorm.org demo the paper references —
// while continuing to ingest the live stream.
//
// It loads (or generates) a dataset, builds a histburst detector, and
// exposes:
//
//	GET  /v1/burstiness?e=3&t=1700000&tau=86400
//	GET  /v1/times?e=3&theta=500&tau=86400
//	GET  /v1/events?t=1700000&theta=500&tau=86400
//	GET  /v1/top?t=1700000&k=5&tau=86400
//	GET  /v1/stats
//	POST /v1/append          {"elements":[{"event":3,"time":1700000}, …]}
//	GET  /healthz            liveness probe
//	GET  /readyz             readiness probe (503 while starting or draining)
//
// All /v1 responses are JSON; GET / serves an embedded single-page timeline
// UI (the estorm.org-style demo view).
//
// With -snapshots the server is crash-safe: the directory holds a segmented
// timeline store — immutable sketch segment files named by a CRC-checked
// manifest — and every checkpoint seals the in-memory head into it with an
// atomic manifest rewrite (-checkpoint cadence, plus a final seal on
// graceful shutdown). Startup recovers the manifest generation the last
// completed write left behind; crash debris is swept. Directories written
// by older versions (whole-detector snap-*.hbsk checkpoints) are migrated
// on first boot: the newest intact legacy snapshot becomes the store's
// first segment. GET /v1/segments exposes the live segment directory.
//
// Between checkpoints, acknowledged appends are protected by a write-ahead
// log (-wal-sync selects the fsync policy; see the README durability
// table), a background scrubber re-verifies segment files and quarantines
// damaged ones (-scrub-interval), and a persistent disk fault flips the
// server read-only — appends answer 503 + Retry-After while queries keep
// serving — until the disk recovers. /healthz and /readyz report WAL lag,
// quarantine count, and the degraded state as JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"histburst/internal/segstore"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		wireAddr = flag.String("wire-addr", "", "HBP1 binary wire-protocol listen address (empty = disabled)")
		debug    = flag.String("debug-addr", "", "net/http/pprof listen address (empty = disabled)")
		sketch   = flag.String("sketch", "", "saved sketch from burstcli -save (skips building)")
		in       = flag.String("in", "", "dataset file from burstgen (default: generate a demo olympicrio stream)")
		n        = flag.Int64("n", 200_000, "demo stream size when no -in is given")
		k        = flag.Uint64("k", 0, "start with an empty detector over this event-id space (skips the demo stream)")
		gamma    = flag.Float64("gamma", 8, "PBE-2 error cap γ")
		seed     = flag.Int64("seed", 1, "workload / sketch seed")

		snapDir    = flag.String("snapshots", "", "store directory for checkpoints and crash recovery (empty = stateless)")
		checkpoint = flag.Duration("checkpoint", time.Minute, "checkpoint cadence when -snapshots is set (0 = only on shutdown)")
		retain     = flag.Int("retain", 5, "legacy snapshots kept during migration")
		sealEvents = flag.Int64("seal-events", 0, "elements per head segment before sealing (0 = default, negative = seal only at checkpoints)")
		fanout     = flag.Int("compact-fanout", 0, "segments merged per compaction (0 = default, negative = no compaction)")
		decayTiers = flag.String("decay-tiers", "", "time-decayed compaction ladder, ascending \"age:gamma:res[:w]\" tiers separated by commas (empty = keep full fidelity forever)")
		inflight   = flag.Int("max-inflight", 256, "concurrent /v1 requests before shedding with 503")
		maxSubs    = flag.Int("max-subscriptions", 1024, "armed standing queries before registrations are refused")
		alertQueue = flag.Int("alert-queue", 256, "per-subscriber alert queue capacity (overflow drops oldest)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")

		walSync       = flag.String("wal-sync", "always", "write-ahead log fsync policy: always (fsync per commit), interval (background cadence), off (page cache only)")
		walSyncEvery  = flag.Duration("wal-sync-interval", segstore.DefaultWALSyncEvery, "fsync cadence under -wal-sync=interval")
		scrubInterval = flag.Duration("scrub-interval", time.Minute, "segment scrub cadence (negative = disabled)")
	)
	flag.Parse()

	walPolicy, err := segstore.ParseWALSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "burstd:", err)
		os.Exit(2)
	}
	tiers, err := parseDecayTiers(*decayTiers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "burstd:", err)
		os.Exit(2)
	}

	opts := serverOpts{
		Sketch: *sketch, In: *in, N: *n, K: *k, Gamma: *gamma, Seed: *seed,
		SnapDir: *snapDir, Retain: *retain, MaxInflight: *inflight,
		MaxSubs: *maxSubs, AlertQueue: *alertQueue,
		SealEvents: *sealEvents, Fanout: *fanout, DecayTiers: tiers,
		WALSync: walPolicy, WALSyncEvery: *walSyncEvery, ScrubInterval: *scrubInterval,
	}
	if err := run(*addr, *wireAddr, *debug, opts, *checkpoint, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "burstd:", err)
		os.Exit(1)
	}
}

// parseDecayTiers parses the -decay-tiers ladder: comma-separated
// "age:gamma:res[:w]" tiers in ascending age order, where age is the
// event-time distance behind the ingest frontier at which a sealed segment
// is re-summarized, gamma the widened PBE-2 error cap, res the coarsened
// time grid, and w (optional) the narrowed sketch width. Values of 0 defer
// to the store's tier-chaining defaults; full validation (ascending ages,
// width divisibility, γ floors) happens in segstore.Open.
func parseDecayTiers(spec string) ([]segstore.DecayTier, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var tiers []segstore.DecayTier
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("decay tier %q: want age:gamma:res[:w]", part)
		}
		age, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("decay tier %q: age: %w", part, err)
		}
		gamma, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("decay tier %q: gamma: %w", part, err)
		}
		res, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("decay tier %q: res: %w", part, err)
		}
		tier := segstore.DecayTier{Age: age, Gamma: gamma, Res: res}
		if len(fields) == 4 {
			w, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("decay tier %q: w: %w", part, err)
			}
			tier.W = w
		}
		tiers = append(tiers, tier)
	}
	return tiers, nil
}

// run owns the process lifecycle: the checkpoint ticker and the debug
// listener it spawns live until the signal context (stop) cancels and the
// process exits with it.
//
//histburst:worker stop
func run(addr, wireAddr, debugAddr string, opts serverOpts, checkpoint, drain time.Duration) error {
	srv, err := newServer(opts)
	if err != nil {
		return err
	}
	log.Printf("burstd: %d elements over [0, %d], %d segments at generation %d, %d bytes, listening on %s",
		srv.store.N(), srv.store.MaxTime(), len(srv.store.Segments()), srv.store.Generation(), srv.store.Bytes(), addr)

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic checkpoints; no-op checkpoints (nothing appended) are
	// skipped inside.
	if srv.store.Dir() != "" && checkpoint > 0 {
		go func() {
			tick := time.NewTicker(checkpoint)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if name, err := srv.checkpoint(false); err != nil {
						log.Printf("burstd: checkpoint failed: %v", err)
					} else if name != "" {
						log.Printf("burstd: checkpointed to %s", name)
					}
				}
			}
		}()
	}

	// The HBP1 wire listener serves the same store alongside HTTP. Appends
	// ride the same ingest seam, so draining and degraded semantics match;
	// shutdown stops accepting at drain start and tears live connections
	// down only after the drain window, like the HTTP graceful shutdown.
	var ws *wireListener
	if wireAddr != "" {
		ws, err = listenWire(srv, wireAddr)
		if err != nil {
			return err
		}
		log.Printf("burstd: wire protocol (HBP1) listening on %s", ws.Addr())
	}

	// The debug listener exposes net/http/pprof privately for load-test
	// profiling; it never shares a mux with the public routes.
	if debugAddr != "" {
		go func() {
			log.Printf("burstd: debug (pprof) listening on %s", debugAddr)
			if err := http.ListenAndServe(debugAddr, debugHandler()); err != nil {
				log.Printf("burstd: debug listener: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		if ws != nil {
			ws.Close()
		}
		return err
	case <-ctx.Done():
	}
	log.Printf("burstd: shutting down (drain %s)", drain)
	srv.ready.Store(false) // readyz flips 503; new appends are refused
	// Shut alerting down before the HTTP drain: closing the hub unblocks
	// every SSE handler mid-Pop, so long-lived streams cannot stall the
	// graceful shutdown, and the webhook workers drain out.
	srv.closeAlerts()
	if ws != nil {
		// Stop accepting new wire connections; live ones keep serving
		// through the drain window so pending appends are answered with
		// NACK(draining) instead of a connection reset.
		ws.Drain()
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("burstd: drain incomplete: %v", err)
	}
	if ws != nil {
		ws.Close() // drain window over: drop the surviving wire connections
	}
	// Close seals the entire head and waits for the background workers —
	// the final checkpoint. For a stateless server this just stops the
	// store's goroutines.
	if err := srv.store.Close(); err != nil {
		return fmt.Errorf("final checkpoint: %w", err)
	}
	if srv.store.Dir() != "" {
		log.Printf("burstd: final seal at generation %d", srv.store.Generation())
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
