package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/wire"
)

// Equivalence: the HBP1 transport must answer every query shape and every
// append outcome semantically identically to the HTTP handlers — same
// numbers, same rejection counts, same degraded envelopes, same error
// strings. Both transports front the same snapshot accessors and ingest
// seam, and these tests pin that the mapping layers agree.

// bothTransports starts HTTP and wire frontends over one server.
func bothTransports(t *testing.T, srv *server) (*httptest.Server, *wire.Client) {
	t.Helper()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	wc, err := wire.Dial(wl.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })
	return ts, wc
}

func demoServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(serverOpts{N: 20_000, Gamma: 8, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestWireHTTPQueryEquivalence(t *testing.T) {
	srv := demoServer(t)
	ts, wc := bothTransports(t, srv)
	maxT := srv.store.MaxTime()

	t.Run("point", func(t *testing.T) {
		var qs []wire.PointQuery
		for e := uint64(0); e < 8; e++ {
			for _, tau := range []int64{3600, 86_400, 0} {
				qs = append(qs, wire.PointQuery{Event: e, T: maxT / 2, Tau: tau})
				qs = append(qs, wire.PointQuery{Event: e, T: maxT, Tau: tau})
			}
		}
		got, err := wc.Point(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			tau := q.Tau
			if tau == 0 {
				tau = 86_400 // the wire default matches the batch endpoint's
			}
			var out map[string]any
			url := fmt.Sprintf("%s/v1/burstiness?e=%d&t=%d&tau=%d", ts.URL, q.Event, q.T, tau)
			if code := getJSON(t, url, &out); code != 200 {
				t.Fatalf("query %d: HTTP %d: %v", i, code, out)
			}
			if got[i].Burstiness != out["burstiness"].(float64) {
				t.Fatalf("query %d (%+v): wire %v, http %v", i, q, got[i].Burstiness, out["burstiness"])
			}
			if got[i].Envelope != nil {
				t.Fatalf("query %d: wire envelope on a whole history", i)
			}
			if _, degraded := out["envelope"]; degraded {
				t.Fatalf("query %d: http envelope on a whole history", i)
			}
		}
	})

	t.Run("times", func(t *testing.T) {
		ranges, env, err := wc.Times(3, 100, 86_400)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if code := getJSON(t, fmt.Sprintf("%s/v1/times?e=3&theta=100&tau=86400", ts.URL), &out); code != 200 {
			t.Fatalf("HTTP %d: %v", code, out)
		}
		httpRanges, _ := out["ranges"].([]any)
		if len(ranges) != len(httpRanges) {
			t.Fatalf("wire %d ranges, http %d", len(ranges), len(httpRanges))
		}
		for i, r := range ranges {
			hr := httpRanges[i].(map[string]any)
			if float64(r.Start) != hr["Start"].(float64) || float64(r.End) != hr["End"].(float64) {
				t.Fatalf("range %d: wire %+v, http %v", i, r, hr)
			}
		}
		if env != nil || out["envelope"] != nil {
			t.Fatal("envelope on a whole history")
		}
	})

	t.Run("events", func(t *testing.T) {
		hits, _, err := wc.Events(maxT/2, 50, 86_400)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if code := getJSON(t, fmt.Sprintf("%s/v1/events?t=%d&theta=50&tau=86400", ts.URL, maxT/2), &out); code != 200 {
			t.Fatalf("HTTP %d: %v", code, out)
		}
		httpHits, _ := out["events"].([]any)
		if len(hits) != len(httpHits) {
			t.Fatalf("wire %d hits, http %d", len(hits), len(httpHits))
		}
		for i, h := range hits {
			hh := httpHits[i].(map[string]any)
			if float64(h.Event) != hh["event"].(float64) || h.Burstiness != hh["burstiness"].(float64) {
				t.Fatalf("hit %d: wire %+v, http %v", i, h, hh)
			}
		}
	})

	t.Run("top", func(t *testing.T) {
		hits, _, err := wc.Top(maxT/2, 5, 86_400)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if code := getJSON(t, fmt.Sprintf("%s/v1/top?t=%d&k=5&tau=86400", ts.URL, maxT/2), &out); code != 200 {
			t.Fatalf("HTTP %d: %v", code, out)
		}
		httpHits, _ := out["events"].([]any)
		if len(hits) != len(httpHits) {
			t.Fatalf("wire %d hits, http %d", len(hits), len(httpHits))
		}
		for i, h := range hits {
			// /v1/top marshals histburst.EventBurstiness directly (no json
			// tags), so the keys are the exported field names.
			hh := httpHits[i].(map[string]any)
			if float64(h.Event) != hh["Event"].(float64) || h.Burstiness != hh["Burstiness"].(float64) {
				t.Fatalf("hit %d: wire %+v, http %v", i, h, hh)
			}
		}
	})

	t.Run("stats", func(t *testing.T) {
		st, err := wc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if code := getJSON(t, ts.URL+"/v1/stats", &out); code != 200 {
			t.Fatalf("HTTP %d: %v", code, out)
		}
		if float64(st.Elements) != out["elements"].(float64) ||
			float64(st.MaxTime) != out["maxTime"].(float64) ||
			float64(st.EventSpace) != out["eventSpace"].(float64) ||
			float64(st.Segments) != out["segments"].(float64) ||
			float64(st.Generation) != out["generation"].(float64) ||
			st.ReadOnly != out["readOnly"].(bool) {
			t.Fatalf("wire %+v, http %v", st, out)
		}
	})

	t.Run("errors", func(t *testing.T) {
		// The wire ERR frame carries the HTTP handlers' exact error strings.
		cases := []struct {
			name string
			call func() error
			url  string // HTTP route producing the same error ("" = batch)
			body string
		}{
			{"negative tau", func() error {
				_, err := wc.Point([]wire.PointQuery{{Event: 1, T: 5, Tau: -7}})
				return err
			}, "", `{"queries":[{"event":1,"t":5,"tau":-7}]}`},
			{"theta", func() error { _, _, err := wc.Events(5, -1, 60); return err },
				"/v1/events?t=5&theta=-1&tau=60", ""},
			{"k", func() error { _, _, err := wc.Top(5, -2, 60); return err },
				"/v1/top?t=5&k=-2&tau=60", ""},
		}
		for _, tc := range cases {
			err := tc.call()
			re, ok := err.(*wire.RequestError)
			if !ok {
				t.Fatalf("%s: wire error = %v, want RequestError", tc.name, err)
			}
			var out map[string]any
			var code int
			if tc.url != "" {
				code = getJSON(t, ts.URL+tc.url, &out)
			} else {
				resp, err := http.Post(ts.URL+"/v1/query/batch", "application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Fatal(err)
				}
				code = resp.StatusCode
				if err := jsonDecode(resp, &out); err != nil {
					t.Fatal(err)
				}
			}
			if code != 400 {
				t.Fatalf("%s: HTTP %d, want 400", tc.name, code)
			}
			if re.Message != out["error"].(string) {
				t.Fatalf("%s: wire %q, http %q", tc.name, re.Message, out["error"])
			}
		}
	})
}

func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestWireHTTPAppendEquivalence(t *testing.T) {
	// Two identical empty servers; the same batches go to one over HTTP and
	// the other over wire. Acks must agree field for field, including the
	// rejection counts of out-of-order elements.
	mk := func() *server {
		srv, err := newServer(serverOpts{K: 64, Gamma: 2, Seed: 1, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	hsrv, wsrv := mk(), mk()
	ts := httptest.NewServer(hsrv.handler())
	t.Cleanup(ts.Close)
	wl, err := listenWire(wsrv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wl.Close)
	wc, err := wire.Dial(wl.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })

	batches := []stream.Stream{
		{{Event: 3, Time: 100}, {Event: 4, Time: 101}, {Event: 3, Time: 150}},
		{{Event: 5, Time: 90}, {Event: 5, Time: 200}},   // one behind the frontier
		{{Event: 1, Time: 10}, {Event: 2, Time: 20}},    // all behind
		{{Event: 9, Time: 300}, {Event: 10, Time: 300}}, // ties at the frontier
	}
	for i, batch := range batches {
		var parts []string
		for _, el := range batch {
			parts = append(parts, fmt.Sprintf(`{"event":%d,"time":%d}`, el.Event, el.Time))
		}
		code, httpOut := postAppend(t, ts.URL, strings.Join(parts, ","))
		if code != 200 {
			t.Fatalf("batch %d: HTTP append %d: %v", i, code, httpOut)
		}
		wireOut, err := wc.Append(batch)
		if err != nil {
			t.Fatalf("batch %d: wire append: %v", i, err)
		}
		if float64(wireOut.Appended) != httpOut["appended"].(float64) ||
			float64(wireOut.Rejected) != httpOut["rejected"].(float64) ||
			float64(wireOut.Elements) != httpOut["elements"].(float64) ||
			float64(wireOut.OutOfOrder) != httpOut["outOfOrder"].(float64) {
			t.Fatalf("batch %d: wire %+v, http %v", i, wireOut, httpOut)
		}
	}
}

func TestWireDegradedEnvelopeMatchesHTTP(t *testing.T) {
	// Quarantine fixture: damage a sealed segment so queries degrade, then
	// compare the envelope both transports attach.
	dir := t.TempDir()
	st, err := segstore.Open(dir, segstore.Config{K: 64, Gamma: 2, Seed: 1, SealEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := st.Append(uint64(i%4), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(true); err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("fixture sealed %d segments, want >= 2", len(segs))
	}
	path := filepath.Join(dir, segs[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, _ := liveServer(t, dir)
	ts, wc := bothTransports(t, srv)

	got, err := wc.Point([]wire.PointQuery{{Event: 1, T: 15, Tau: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Envelope == nil || !got[0].Envelope.Degraded {
		t.Fatalf("wire point not degraded: %+v", got[0])
	}
	var out map[string]any
	if code := getJSON(t, ts.URL+"/v1/burstiness?e=1&t=15&tau=4", &out); code != 200 {
		t.Fatalf("HTTP %d: %v", code, out)
	}
	henv, ok := out["envelope"].(map[string]any)
	if !ok {
		t.Fatalf("http response carries no envelope: %v", out)
	}
	wenv := got[0].Envelope
	if got[0].Burstiness != out["burstiness"].(float64) {
		t.Fatalf("degraded burstiness: wire %v, http %v", got[0].Burstiness, out["burstiness"])
	}
	if wenv.Gamma != henv["gamma"].(float64) ||
		float64(wenv.Components) != henv["components"].(float64) ||
		wenv.Bound != henv["bound"].(float64) ||
		float64(wenv.MissingElements) != henv["missingElements"].(float64) ||
		wenv.Degraded != henv["degraded"].(bool) {
		t.Fatalf("envelope mismatch: wire %+v, http %v", wenv, henv)
	}
	missing := henv["missing"].([]any)
	if len(missing) != len(wenv.Missing) {
		t.Fatalf("missing spans: wire %v, http %v", wenv.Missing, missing)
	}
	for i, m := range wenv.Missing {
		hm := missing[i].(map[string]any)
		if float64(m.Start) != hm["Start"].(float64) || float64(m.End) != hm["End"].(float64) {
			t.Fatalf("missing span %d: wire %+v, http %v", i, m, hm)
		}
	}
}

func TestWireReadOnlyNackMatchesHTTP(t *testing.T) {
	// A read-only server refuses appends on both transports with the same
	// message and the same Retry-After hint.
	srv, err := newServer(serverOpts{K: 64, Gamma: 2, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv.readOnly.Store(true)
	ts, wc := bothTransports(t, srv)

	resp, err := http.Post(ts.URL+"/v1/append", "application/json",
		strings.NewReader(`{"elements":[{"event":1,"time":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var httpOut map[string]any
	if err := jsonDecode(resp, &httpOut); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP append %d, want 503", resp.StatusCode)
	}
	retrySecs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}

	_, werr := wc.Append(stream.Stream{{Event: 1, Time: 10}})
	ne, ok := werr.(*wire.NackError)
	if !ok {
		t.Fatalf("wire append error = %v, want NackError", werr)
	}
	if ne.Code != wire.NackReadOnly {
		t.Fatalf("nack code = %v", ne.Code)
	}
	if ne.Message != httpOut["error"].(string) {
		t.Fatalf("refusal message: wire %q, http %q", ne.Message, httpOut["error"])
	}
	// The header rounds the hint up to whole seconds; the wire hint is the
	// exact duration. They must agree to the second.
	wireSecs := int((ne.RetryAfter + time.Second - 1) / time.Second)
	if wireSecs != retrySecs {
		t.Fatalf("retry hint: wire %v (%ds), http %ds", ne.RetryAfter, wireSecs, retrySecs)
	}
	if ne.Envelope == nil {
		t.Fatal("wire NACK carries no envelope")
	}

	// Draining refuses with its own code and message on both transports.
	srv.readOnly.Store(false)
	srv.ready.Store(false)
	resp2, err := http.Post(ts.URL+"/v1/append", "application/json",
		strings.NewReader(`{"elements":[{"event":1,"time":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out2 map[string]any
	if err := jsonDecode(resp2, &out2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining HTTP append %d, want 503", resp2.StatusCode)
	}
	_, werr = wc.Append(stream.Stream{{Event: 1, Time: 10}})
	ne, ok = werr.(*wire.NackError)
	if !ok || ne.Code != wire.NackDraining {
		t.Fatalf("draining wire append = %v, want NackError(draining)", werr)
	}
	if ne.Message != out2["error"].(string) {
		t.Fatalf("draining message: wire %q, http %q", ne.Message, out2["error"])
	}
}
