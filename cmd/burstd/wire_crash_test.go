package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/wire"
)

// The wire acked-prefix contract against a real process death: a child
// burstd serves HBP1 over a WALSyncAlways store, the parent streams
// appends through a wire.Client recording every ack it receives, then
// SIGKILLs the child mid-stream and recovers the store. Every element the
// client saw acked must have survived — the transport-level mirror of the
// Stager SIGKILL test in internal/segstore, with the network and the
// credit window between the ack and the WAL.

const (
	wireChildEnv = "BURSTD_WIRE_CHILD"
	wireDirEnv   = "BURSTD_WIRE_DIR"
)

// TestCrashWireChildProcess is the child's serving loop, not a test: it
// runs only when re-executed by TestCrashWireAckContractSurvivesKill,
// prints the port it listens on, and never exits on its own.
func TestCrashWireChildProcess(t *testing.T) {
	if os.Getenv(wireChildEnv) == "" {
		t.Skip("subprocess helper")
	}
	srv, err := newServer(serverOpts{
		K: 64, Gamma: 2, Seed: 7, Retain: 1,
		SnapDir: os.Getenv(wireDirEnv),
		WALSync: segstore.WALSyncAlways,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	wl, err := listenWire(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	fmt.Printf("WIREPORT=%d\n", wl.Addr().(*net.TCPAddr).Port)
	select {} // unreachable: the parent kills us
}

func TestCrashWireAckContractSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	var acked int64
	next := int64(1) // element times stay monotonic across rounds
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashWireChildProcess$")
		cmd.Env = append(os.Environ(), wireChildEnv+"=1", wireDirEnv+"="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(out)
		port := ""
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "FAIL") || strings.Contains(line, "SKIP") {
				t.Fatalf("round %d: child did not serve: %s", round, line)
			}
			if p, ok := strings.CutPrefix(line, "WIREPORT="); ok {
				port = p
				break
			}
		}
		if port == "" {
			cmd.Process.Kill() //histburst:allow errdrop -- cleanup on a failed spawn
			t.Fatalf("round %d: child never printed its port", round)
		}

		wc, err := wire.Dial("127.0.0.1:"+port, 5*time.Second)
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		// Kill the child mid-stream while the client keeps appending. Acks
		// the client already holds are durable no matter when the SIGKILL
		// lands; Append returns the partial aggregate alongside the error.
		killed := make(chan struct{})
		go func() {
			defer close(killed)
			time.Sleep(time.Duration(100+50*round) * time.Millisecond)
			cmd.Process.Kill() //histburst:allow errdrop -- the kill racing child exit is fine
		}()
		for {
			batch := make(stream.Stream, 64)
			for j := range batch {
				batch[j] = stream.Element{Event: uint64(j % 16), Time: next}
				next++
			}
			res, err := wc.Append(batch)
			acked += res.Appended
			if err != nil {
				break
			}
		}
		wc.Close()
		<-killed
		cmd.Wait() //histburst:allow errdrop -- the child was killed; a non-zero exit is the expected outcome

		re, err := newServer(serverOpts{
			K: 64, Gamma: 2, Seed: 7, Retain: 1,
			SnapDir: dir,
			WALSync: segstore.WALSyncAlways,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatalf("round %d: recovery after kill: %v", round, err)
		}
		if got := re.store.N(); got < acked {
			t.Fatalf("round %d: recovered %d elements but %d were acked over the wire", round, got, acked)
		}
		if err := re.store.Close(); err != nil {
			t.Fatalf("round %d: close recovered store: %v", round, err)
		}
	}
	if acked == 0 {
		t.Fatal("no appends were ever acked; harness broken")
	}
}
