package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
)

// Batch point queries: POST /v1/query/batch evaluates many burstiness point
// queries against ONE store snapshot, fanning the evaluations across cores.
// Snapshot queries are pure and lock-free (sealed segments are immutable;
// the head synchronizes internally), so a large batch costs one atomic view
// load and one JSON body instead of thousands, and the whole batch sees one
// consistent generation even while ingest, sealing, and compaction continue.

// maxBatchQueries bounds one batch; beyond this a client should page.
const maxBatchQueries = 10_000

type batchQuery struct {
	Event uint64 `json:"event"`
	T     int64  `json:"t"`
	Tau   int64  `json:"tau,omitempty"` // 0 = server default (86 400)
}

type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

type batchResult struct {
	Event      uint64  `json:"event"`
	T          int64   `json:"t"`
	Tau        int64   `json:"tau"`
	Burstiness float64 `json:"burstiness"`
}

func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, maxAppendBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	// Validate the whole batch before touching the store: a batch is
	// all-or-nothing, never a mix of results and errors.
	for i := range req.Queries {
		q := &req.Queries[i]
		if q.Tau == 0 {
			q.Tau = 86_400
		}
		if q.Tau < 0 {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("query %d: burst span must be positive, got %d", i, q.Tau))
			return
		}
	}
	sn := s.store.Snapshot()
	results := make([]batchResult, len(req.Queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	chunk := (len(req.Queries) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > len(req.Queries) {
			hi = len(req.Queries)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				q := req.Queries[i]
				b, err := sn.Burstiness(q.Event, q.T, q.Tau)
				if err != nil {
					errs[wk] = fmt.Errorf("query %d: %w", i, err)
					return
				}
				results[i] = batchResult{Event: q.Event, T: q.T, Tau: q.Tau, Burstiness: b}
			}
		}(wk, lo, hi)
	}
	wg.Wait()
	if err := firstErr(errs...); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{"results": results})
}
