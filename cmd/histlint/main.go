// Command histlint runs histburst's repo-specific static-analysis suite
// (internal/lint) over the module: invariants go vet cannot see, enforced by
// tooling instead of reviewer memory. See docs/ANALYZERS.md.
//
// Usage:
//
//	histlint [-only a,b] [-skip a,b] [-list] [-json] [-atomic-strict] [packages...]
//
// Packages default to ./... and accept the go tool's directory patterns;
// duplicate directories across patterns are loaded once (the loader memoizes
// per directory, so "./... ./internal/lint" costs one go/types pass).
// -json emits one {file,line,col,analyzer,message} object per finding per
// line instead of the file:line:col text format. Exit status: 0 clean, 1
// findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"histburst/internal/lint"
)

// jsonDiag is the -json record shape; field names are part of the CI
// problem-matcher contract.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON records, one per line")
	atomicStrict := flag.Bool("atomic-strict", false, "atomicguard also scans _test.go files (name-based)")
	flag.Parse()

	lint.AtomicGuardStrict = *atomicStrict

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(splitList(*only), splitList(*skip))
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		fatal(err)
	}

	var pkgs []*lint.Package
	loadFailed := false
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histlint: %s: %v\n", dir, err)
			loadFailed = true
			continue
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "histlint: %s: %v\n", dir, terr)
			loadFailed = true
		}
		pkgs = append(pkgs, p)
	}
	if loadFailed {
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "histlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "histlint:", err)
	os.Exit(2)
}
