// Command histlint runs histburst's repo-specific static-analysis suite
// (internal/lint) over the module: invariants go vet cannot see, enforced by
// tooling instead of reviewer memory. See docs/ANALYZERS.md.
//
// Usage:
//
//	histlint [-only a,b] [-skip a,b] [-list] [packages...]
//
// Packages default to ./... and accept the go tool's directory patterns.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"histburst/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(splitList(*only), splitList(*skip))
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		fatal(err)
	}

	var pkgs []*lint.Package
	loadFailed := false
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histlint: %s: %v\n", dir, err)
			loadFailed = true
			continue
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "histlint: %s: %v\n", dir, terr)
			loadFailed = true
		}
		pkgs = append(pkgs, p)
	}
	if loadFailed {
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "histlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "histlint:", err)
	os.Exit(2)
}
