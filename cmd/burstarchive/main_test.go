package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"histburst/internal/stream"
)

// writePartitionFile writes a dataset covering [start, end) with a burst on
// event 3 in the middle when burst is set.
func writePartitionFile(t *testing.T, path string, start, end int64, burst bool) {
	t.Helper()
	var s stream.Stream
	for tm := start; tm < end; tm++ {
		s = append(s, stream.Element{Event: uint64(tm % 8), Time: tm})
		if burst && tm >= (start+end)/2 && tm < (start+end)/2+50 {
			for j := 0; j < 6; j++ {
				s = append(s, stream.Element{Event: 3, Time: tm})
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.Write(f, s); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveWorkflow(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "arch")
	out, err := os.CreateTemp(tmp, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	if err := run("init", []string{"-dir", dir}, out); err != nil {
		t.Fatalf("init: %v", err)
	}
	p1 := filepath.Join(tmp, "p1.hbst")
	p2 := filepath.Join(tmp, "p2.hbst")
	writePartitionFile(t, p1, 0, 2000, false)
	writePartitionFile(t, p2, 2000, 4000, true)
	shared := []string{"-dir", dir, "-k", "8", "-gamma", "2", "-seed", "3"}
	if err := run("seal", append([]string{"-in", p1, "-start", "0", "-end", "1999"}, shared...), out); err != nil {
		t.Fatalf("seal 1: %v", err)
	}
	if err := run("seal", append([]string{"-in", p2, "-start", "2000", "-end", "3999"}, shared...), out); err != nil {
		t.Fatalf("seal 2: %v", err)
	}
	if err := run("stats", []string{"-dir", dir}, out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// Query inside the second partition's burst.
	if err := run("point", []string{"-dir", dir, "-e", "3", "-t", "3049", "-tau", "50"}, out); err != nil {
		t.Fatalf("point: %v", err)
	}
	if err := run("events", []string{"-dir", dir, "-t", "3049", "-theta", "100", "-tau", "50"}, out); err != nil {
		t.Fatalf("events: %v", err)
	}
	// Check the output mentions the bursty event.
	raw, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, "partitions: 2") {
		t.Fatalf("stats missing:\n%s", s)
	}
	if !strings.Contains(s, "event 3") {
		t.Fatalf("bursty event not reported:\n%s", s)
	}
}

func TestArchiveErrors(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run("init", []string{}, out); err == nil {
		t.Error("init without -dir accepted")
	}
	if err := run("seal", []string{"-dir", "/no/such"}, out); err == nil {
		t.Error("seal without -in accepted")
	}
	if err := run("bogus", nil, out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run("point", []string{}, out); err == nil {
		t.Error("point without -dir accepted")
	}
	if err := run("stats", []string{"-dir", t.TempDir()}, out); err == nil {
		t.Error("stats on non-archive accepted")
	}
}
