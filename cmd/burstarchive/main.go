// Command burstarchive maintains a time-partitioned archive of burstiness
// summaries: seal each ingestion period (a day, an hour) as its own
// partition, then answer historical queries across any range of partitions
// without the raw data.
//
//	burstarchive init   -dir ./arch
//	burstarchive seal   -dir ./arch -in day1.hbst -start 0 -end 86399
//	burstarchive seal   -dir ./arch -in day2.hbst -start 86400 -end 172799
//	burstarchive stats  -dir ./arch
//	burstarchive events -dir ./arch -t 120000 -theta 500 -tau 3600
//	burstarchive point  -dir ./arch -e 3 -t 120000 -tau 3600
//
// Every partition must be built with the same sketch configuration; seal
// derives it from the shared flags (-k, -gamma, -seed), so pass the same
// values for every seal into one archive.
package main

import (
	"flag"
	"fmt"
	"os"

	"histburst"
	"histburst/internal/archive"
	"histburst/internal/metrics"
	"histburst/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if err := run(cmd, args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "burstarchive:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: burstarchive <init|seal|stats|point|events> [flags]")
}

func run(cmd string, args []string, out *os.File) error {
	switch cmd {
	case "init":
		fs := flag.NewFlagSet("init", flag.ContinueOnError)
		dir := fs.String("dir", "", "archive directory (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("init: -dir is required")
		}
		if _, err := archive.Create(*dir); err != nil {
			return err
		}
		fmt.Fprintf(out, "initialized archive at %s\n", *dir)
		return nil

	case "seal":
		fs := flag.NewFlagSet("seal", flag.ContinueOnError)
		dir := fs.String("dir", "", "archive directory (required)")
		in := fs.String("in", "", "partition dataset file from burstgen (required)")
		start := fs.Int64("start", 0, "partition span start (inclusive)")
		end := fs.Int64("end", -1, "partition span end (inclusive; default: data max)")
		k := fs.Uint64("k", 4096, "event-id space (same for every partition)")
		gamma := fs.Float64("gamma", 8, "PBE-2 error cap γ (same for every partition)")
		seed := fs.Int64("seed", 1, "sketch seed (same for every partition)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *dir == "" || *in == "" {
			return fmt.Errorf("seal: -dir and -in are required")
		}
		a, err := archive.Open(*dir)
		if err != nil {
			return err
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		data, err := stream.Read(f)
		if err != nil {
			return err
		}
		det, err := histburst.New(*k, histburst.WithPBE2(*gamma), histburst.WithSeed(*seed))
		if err != nil {
			return err
		}
		for _, el := range data {
			det.Append(el.Event, el.Time)
		}
		det.Finish()
		e := *end
		if e < 0 {
			e = det.MaxTime()
		}
		if err := a.Seal(det, *start, e); err != nil {
			return err
		}
		fmt.Fprintf(out, "sealed partition [%d, %d]: %d elements, %s\n",
			*start, e, det.N(), metrics.HumanBytes(det.Bytes()))
		return nil

	case "stats":
		fs := flag.NewFlagSet("stats", flag.ContinueOnError)
		dir := fs.String("dir", "", "archive directory (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("stats: -dir is required")
		}
		a, err := archive.Open(*dir)
		if err != nil {
			return err
		}
		s, e, ok := a.Span()
		fmt.Fprintf(out, "partitions: %d\n", a.Partitions())
		if ok {
			fmt.Fprintf(out, "span:       [%d, %d]\n", s, e)
		}
		return nil

	case "point", "events":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		dir := fs.String("dir", "", "archive directory (required)")
		e := fs.Uint64("e", 0, "event id (point query)")
		t := fs.Int64("t", 0, "query instant")
		tau := fs.Int64("tau", 86_400, "burst span τ")
		theta := fs.Float64("theta", 100, "threshold θ (events query)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("%s: -dir is required", cmd)
		}
		a, err := archive.Open(*dir)
		if err != nil {
			return err
		}
		// Load only the partitions the query window [t−2τ, t] touches.
		// Skipping earlier history is sound for burstiness: the missing
		// prefix shifts all three cumulative-frequency terms of
		// b = F(t) − 2F(t−τ) + F(t−2τ) by the same constant, which the
		// second difference cancels.
		det, err := a.LoadRange(*t-2*(*tau), *t)
		if err != nil {
			return err
		}
		if cmd == "point" {
			b, err := det.Burstiness(*e, *t, *tau)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "b_%d(%d) ≈ %.1f (τ=%d)\n", *e, *t, b, *tau)
			return nil
		}
		ids, err := det.BurstyEvents(*t, *theta, *tau)
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Fprintf(out, "no event reaches burstiness %.0f at t=%d\n", *theta, *t)
			return nil
		}
		for _, id := range ids {
			b, err := det.Burstiness(id, *t, *tau)
			if err != nil {
				return fmt.Errorf("burstiness of event %d: %w", id, err)
			}
			fmt.Fprintf(out, "event %-8d b ≈ %.1f\n", id, b)
		}
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}
