package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func TestSegmentsCmdPrintsTierTable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/segments" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{
			"generation": 12,
			"segments": [
				{"id":7,"start":0,"end":99,"elements":400,"bytes":2048,"compacted":true,"tier":1,"gamma":8,"w":8,"res":3600},
				{"id":5,"start":100,"end":160,"elements":16,"bytes":4096}
			],
			"tiers": [
				{"tier":0,"segments":1,"elements":16,"bytes":4096,"gamma":2,"w":32,"res":1,"minT":100,"maxT":160},
				{"tier":1,"segments":1,"elements":400,"bytes":2048,"gamma":8,"w":8,"res":3600,"minT":0,"maxT":99}
			],
			"quarantined": [],
			"readOnly": false
		}`)
	}))
	defer ts.Close()

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	cmdErr := runSegmentsCmd([]string{"-http", ts.URL, "-full"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if cmdErr != nil {
		t.Fatalf("segments: %v\noutput:\n%s", cmdErr, out)
	}
	text := string(out)
	for _, want := range []string{
		"generation 12, 2 segments (0 quarantined)",
		"3600",           // tier 1 resolution
		"segment 7",      // -full listing
		"tier 1, [0, 99]", // fidelity metadata reaches the per-segment lines
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	if err := runSegmentsCmd([]string{}); err == nil {
		t.Fatal("segments without -http did not error")
	}
}
