package main

import (
	"fmt"
	"time"

	"histburst/internal/metrics"
	"histburst/internal/segstore"
	"histburst/internal/wire"
)

// runRemote answers the query against a running burstd over HBP1 instead
// of building a detector locally. Degraded-mode answers carry the store's
// γ error envelope; it is surfaced next to the result the same way the
// HTTP API attaches its envelope object.
func runRemote(addr string, point, times, evts, stats bool, e uint64, t, tau int64, theta float64) error {
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	switch {
	case stats:
		st, err := c.Stats()
		if err != nil {
			return err
		}
		h := c.Hello()
		fmt.Printf("elements:       %d\n", st.Elements)
		fmt.Printf("id space:       %d (γ=%g)\n", st.EventSpace, h.Gamma)
		fmt.Printf("time span:      [0, %d]\n", st.MaxTime)
		fmt.Printf("sketch size:    %s\n", metrics.HumanBytes(int(st.Bytes)))
		fmt.Printf("segments:       %d (%d quarantined, head %d elems)\n",
			st.Segments, st.Quarantined, st.HeadElems)
		if st.ReadOnly {
			fmt.Printf("mode:           read-only (degraded)\n")
		}
	case point:
		res, err := c.Point([]wire.PointQuery{{Event: e, T: t, Tau: tau}})
		if err != nil {
			return err
		}
		fmt.Printf("b_%d(%d) ≈ %.1f (τ=%d)%s\n", e, t, res[0].Burstiness, tau,
			envelopeNote(res[0].Envelope))
	case times:
		ranges, env, err := c.Times(e, theta, tau)
		if err != nil {
			return err
		}
		if note := envelopeNote(env); note != "" {
			fmt.Println(note)
		}
		if len(ranges) == 0 {
			fmt.Printf("event %d never reaches burstiness %.0f (τ=%d)\n", e, theta, tau)
			return nil
		}
		for _, r := range ranges {
			fmt.Printf("[%d, %d)\n", r.Start, r.End)
		}
	case evts:
		hits, env, err := c.Events(t, theta, tau)
		if err != nil {
			return err
		}
		if note := envelopeNote(env); note != "" {
			fmt.Println(note)
		}
		if len(hits) == 0 {
			fmt.Printf("no event reaches burstiness %.0f at t=%d (τ=%d)\n", theta, t, tau)
			return nil
		}
		for _, h := range hits {
			fmt.Printf("event %-8d b ≈ %.1f\n", h.Event, h.Burstiness)
		}
	default:
		return fmt.Errorf("with -addr pass one of -point, -times, -events, -stats")
	}
	return nil
}

// envelopeNote renders a degraded-history warning, empty when the history
// is whole.
func envelopeNote(env *segstore.ErrorEnvelope) string {
	if env == nil {
		return ""
	}
	if !env.Degraded {
		return fmt.Sprintf("  [error bound ±%.3g (%d components, γ=%g)]",
			env.Bound, env.Components, env.Gamma)
	}
	return fmt.Sprintf("  [degraded: %d elements missing in %d quarantined spans, bound ±%.3g]",
		env.MissingElements, len(env.Missing), env.Bound)
}
