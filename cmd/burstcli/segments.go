package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"histburst/internal/metrics"
	"histburst/internal/segstore"
)

// runSegmentsCmd implements `burstcli segments -http http://host:port`: it
// fetches the server's segment directory and prints the decay-tier table —
// how much history each fidelity tier holds in how many bytes, and the
// γ/resolution actually in force there — plus the per-segment listing.
func runSegmentsCmd(argv []string) error {
	fs := flag.NewFlagSet("burstcli segments", flag.ContinueOnError)
	var (
		baseURL = fs.String("http", "", "burstd base URL (JSON transport)")
		full    = fs.Bool("full", false, "also list every sealed segment")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("segments: pass -http")
	}
	base := strings.TrimRight(*baseURL, "/")

	resp, err := http.Get(base + "/v1/segments")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("segments: %s", resp.Status)
	}
	var body struct {
		Generation  uint64                 `json:"generation"`
		Segments    []segstore.SegmentInfo `json:"segments"`
		Tiers       []segstore.TierStats   `json:"tiers"`
		Quarantined []segstore.SegmentInfo `json:"quarantined"`
		ReadOnly    bool                   `json:"readOnly"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("segments: decode: %w", err)
	}

	fmt.Printf("generation %d, %d segments (%d quarantined)\n",
		body.Generation, len(body.Segments), len(body.Quarantined))
	if body.ReadOnly {
		fmt.Println("mode: read-only (degraded)")
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "tier\tsegs\telements\tbytes\tγ\tw\tres\tspan\t")
	for _, ts := range body.Tiers {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%g\t%d\t%d\t[%d, %d]\t\n",
			ts.Tier, ts.Segments, ts.Elements, metrics.HumanBytes(ts.Bytes),
			ts.Gamma, ts.W, ts.Res, ts.MinT, ts.MaxT)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *full {
		for _, g := range body.Segments {
			fmt.Printf("segment %d: tier %d, [%d, %d], %d elements, %s\n",
				g.ID, g.Tier, g.Start, g.End, g.Elements, metrics.HumanBytes(g.Bytes))
		}
	}
	return nil
}
