package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"histburst/internal/subscribe"
	"histburst/internal/wire"
)

// runAlertCmd dispatches the standing-query subcommands:
//
//	burstcli subscribe   -http http://localhost:8427 -events 3,7 -theta 500 [-follow]
//	burstcli subscribe   -addr localhost:8428 -events 3,7 -theta 500
//	burstcli unsubscribe -http http://localhost:8427 -id 2
//	burstcli alerts      -http http://localhost:8427 [-ids 2,5] [-n 10]
//
// Over HTTP a subscription outlives the client: subscribe prints the id,
// alerts tails the SSE stream, unsubscribe removes it. Over the wire a
// subscription is connection-scoped, so subscribe arms the query and
// follows its ALERT frames until the process exits.
func runAlertCmd(cmd string, argv []string) error {
	fs := flag.NewFlagSet("burstcli "+cmd, flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "", "burstd HBP1 address (wire transport)")
		baseURL = fs.String("http", "", "burstd base URL (JSON transport)")
		events  = fs.String("events", "", "comma-separated event ids the standing query watches")
		theta   = fs.Float64("theta", 100, "burstiness threshold θ")
		tau     = fs.Int64("tau", 86_400, "burst span τ")
		dedup   = fs.Int64("dedup", 0, "suppress re-fires within this many time units of the last alert")
		webhook = fs.String("webhook", "", "also POST alerts to this URL (HTTP transport only)")
		id      = fs.Uint64("id", 0, "subscription id to remove (unsubscribe)")
		ids     = fs.String("ids", "", "subscription ids to follow, comma-separated (alerts; empty = all)")
		follow  = fs.Bool("follow", false, "after registering over HTTP, tail the subscription's SSE stream")
		count   = fs.Int("n", 0, "exit after this many alerts (0 = run until interrupted)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if (*addr == "") == (*baseURL == "") {
		return fmt.Errorf("%s: pass exactly one of -addr (wire) or -http (JSON)", cmd)
	}
	base := strings.TrimRight(*baseURL, "/")
	switch cmd {
	case "subscribe":
		evs, err := parseEvents(*events)
		if err != nil {
			return err
		}
		if *addr != "" {
			if *webhook != "" {
				return fmt.Errorf("subscribe: -webhook needs the HTTP transport")
			}
			return wireSubscribe(*addr, subscribe.Subscription{
				Events: evs, Theta: *theta, Tau: *tau, Dedup: *dedup,
			}, *count)
		}
		subID, err := httpSubscribe(base, evs, *theta, *tau, *dedup, *webhook)
		if err != nil {
			return err
		}
		fmt.Printf("subscription %d armed\n", subID)
		if *follow {
			return followSSE(base, strconv.FormatUint(subID, 10), *count)
		}
		return nil
	case "unsubscribe":
		if *id == 0 {
			return fmt.Errorf("unsubscribe: pass -id")
		}
		if *addr != "" {
			return wireUnsubscribe(*addr, *id)
		}
		return httpUnsubscribe(base, *id)
	case "alerts":
		if *addr != "" {
			return fmt.Errorf("alerts: wire alerts are connection-scoped; use `burstcli subscribe -addr ...` to arm and follow in one connection")
		}
		return followSSE(base, *ids, *count)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// parseEvents parses a "3,7,12" id list.
func parseEvents(spec string) ([]uint64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("pass -events with at least one event id")
	}
	var evs []uint64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad event id %q", part)
		}
		evs = append(evs, e)
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("pass -events with at least one event id")
	}
	return evs, nil
}

// alertLine renders one delivered alert, folding in the drop gap and the
// degraded-history envelope the same way the query paths do.
func alertLine(a subscribe.Alert) string {
	line := fmt.Sprintf("alert sub=%d event=%d t=%d b≈%.1f (θ=%g τ=%d)",
		a.Sub, a.Event, a.Time, a.Burstiness, a.Theta, a.Tau)
	if a.Gap > 0 {
		line += fmt.Sprintf("  [+%d dropped before this]", a.Gap)
	}
	return line + envelopeNote(a.Envelope)
}

// wireSubscribe arms a connection-scoped standing query and follows its
// ALERT frames; dropping the connection drops the subscription.
func wireSubscribe(addr string, sub subscribe.Subscription, count int) error {
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()
	subID, err := c.Subscribe(sub)
	if err != nil {
		return err
	}
	fmt.Printf("subscription %d armed (connection-scoped; interrupt to drop)\n", subID)
	for n := 0; count == 0 || n < count; n++ {
		a, ok := c.Alerts().Pop(nil)
		if !ok {
			return fmt.Errorf("connection closed")
		}
		fmt.Println(alertLine(a))
	}
	return nil
}

func wireUnsubscribe(addr string, subID uint64) error {
	c, err := wire.Dial(addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()
	ok, err := c.Unsubscribe(subID)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no subscription %d on this connection (wire subscriptions are connection-scoped)", subID)
	}
	fmt.Printf("subscription %d removed\n", subID)
	return nil
}

func httpSubscribe(base string, events []uint64, theta float64, tau, dedup int64, webhook string) (uint64, error) {
	body, err := json.Marshal(map[string]any{
		"events": events, "theta": theta, "tau": tau,
		"dedup": dedup, "webhook": webhook,
	})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/v1/subscriptions", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //histburst:allow errdrop -- best-effort error body
		return 0, fmt.Errorf("subscribe: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var reg struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return 0, err
	}
	return reg.ID, nil
}

func httpUnsubscribe(base string, subID uint64) error {
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/subscriptions/%d", base, subID), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		fmt.Printf("subscription %d removed\n", subID)
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("no subscription %d", subID)
	default:
		return fmt.Errorf("unsubscribe: %s", resp.Status)
	}
}

// followSSE tails GET /v1/alerts/stream and prints alerts as they arrive.
// Gap frames — alerts shed while this consumer lagged — are surfaced, not
// swallowed. The stream client carries no timeout: it lives until the
// server closes it, count alerts arrive, or the process is interrupted.
func followSSE(base, ids string, count int) error {
	url := base + "/v1/alerts/stream"
	if ids != "" {
		url += "?ids=" + ids
	}
	resp, err := (&http.Client{}).Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("alerts stream: %s", resp.Status)
	}
	var event string
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "gap" {
				var g struct {
					Dropped uint64 `json:"dropped"`
				}
				if err := json.Unmarshal([]byte(data), &g); err == nil {
					fmt.Printf("gap: %d alerts dropped while this consumer lagged\n", g.Dropped)
				}
				continue
			}
			var a subscribe.Alert
			if err := json.Unmarshal([]byte(data), &a); err != nil || a.Sub == 0 {
				continue
			}
			fmt.Println(alertLine(a))
			if seen++; count > 0 && seen >= count {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}
