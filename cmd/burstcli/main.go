// Command burstcli builds a histburst detector over a serialized dataset
// and answers one query from the command line.
//
// Usage:
//
//	burstcli -in data.hbst -point -e 3 -t 1700000 -tau 86400
//	burstcli -in data.hbst -times -e 3 -theta 500 -tau 86400
//	burstcli -in data.hbst -events -t 1700000 -theta 500 -tau 86400
//	burstcli -in data.hbst -stats
//
// Building the sketch dominates the cost; -save persists it so later
// invocations can -sketch it back without touching the raw data:
//
//	burstcli -in data.hbst -save data.hbsk -stats
//	burstcli -sketch data.hbsk -events -t 1700000 -theta 500
//
// With -addr the same queries run against a live burstd over the HBP1
// wire protocol instead of a local build; degraded-history answers print
// the server's error envelope:
//
//	burstcli -addr localhost:8428 -point -e 3 -t 1700000 -tau 86400
//	burstcli -addr localhost:8428 -stats
//
// Standing queries run as subcommands (see runAlertCmd): `subscribe` arms
// a burst alert over either transport, `alerts` tails the HTTP SSE stream,
// `unsubscribe` removes an HTTP-registered subscription:
//
//	burstcli subscribe -http http://localhost:8427 -events 3,7 -theta 500 -follow
//	burstcli subscribe -addr localhost:8428 -events 3,7 -theta 500
//	burstcli alerts -http http://localhost:8427 -ids 2
//	burstcli unsubscribe -http http://localhost:8427 -id 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"histburst"
	"histburst/internal/metrics"
	"histburst/internal/stream"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "subscribe", "unsubscribe", "alerts":
			if err := runAlertCmd(os.Args[1], os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "burstcli:", err)
				os.Exit(1)
			}
			return
		case "segments":
			if err := runSegmentsCmd(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "burstcli:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		in     = flag.String("in", "", "input dataset file written by burstgen")
		addr   = flag.String("addr", "", "query a running burstd over HBP1 at this address instead of building locally")
		sketch = flag.String("sketch", "", "load a saved sketch instead of building from -in")
		save   = flag.String("save", "", "after building, save the sketch to this file")
		point  = flag.Bool("point", false, "POINT QUERY: burstiness of event -e at time -t")
		times  = flag.Bool("times", false, "BURSTY TIME QUERY: when was event -e bursty above -theta")
		evts   = flag.Bool("events", false, "BURSTY EVENT QUERY: which events were bursty at time -t above -theta")
		stats  = flag.Bool("stats", false, "print dataset and sketch statistics")

		e     = flag.Uint64("e", 0, "event id")
		t     = flag.Int64("t", 0, "query time instant")
		tau   = flag.Int64("tau", 86_400, "burst span τ")
		theta = flag.Float64("theta", 100, "burstiness threshold θ")

		gamma = flag.Float64("gamma", 8, "PBE-2 error cap γ for the sketch cells")
		seed  = flag.Int64("seed", 1, "sketch hash seed")
	)
	flag.Parse()
	var err error
	if *addr != "" {
		err = runRemote(*addr, *point, *times, *evts, *stats, *e, *t, *tau, *theta)
	} else {
		err = run(*in, *sketch, *save, *point, *times, *evts, *stats, *e, *t, *tau, *theta, *gamma, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "burstcli:", err)
		os.Exit(1)
	}
}

func run(in, sketchFile, saveFile string, point, times, evts, stats bool, e uint64, t, tau int64, theta, gamma float64, seed int64) error {
	var det *histburst.Detector
	var rawBytes int
	var buildTime time.Duration
	var distinct int

	switch {
	case sketchFile != "":
		f, err := os.Open(sketchFile)
		if err != nil {
			return err
		}
		defer f.Close()
		det, err = histburst.Load(f)
		if err != nil {
			return err
		}
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		data, err := stream.Read(f)
		if err != nil {
			return err
		}
		events := data.Events()
		distinct = len(events)
		rawBytes = 8 * len(data)
		k := uint64(1)
		for _, ev := range events {
			if ev+1 > k {
				k = ev + 1
			}
		}
		det, err = histburst.New(k, histburst.WithPBE2(gamma), histburst.WithSeed(seed))
		if err != nil {
			return err
		}
		sw := metrics.NewStopwatch()
		for _, el := range data {
			det.Append(el.Event, el.Time)
		}
		det.Finish()
		buildTime = sw.Elapsed()
	default:
		return fmt.Errorf("pass -in (dataset) or -sketch (saved sketch)")
	}

	if saveFile != "" {
		f, err := os.Create(saveFile)
		if err != nil {
			return err
		}
		if err := det.Save(f); err != nil {
			f.Close() //histburst:allow errdrop -- best-effort cleanup; the Save error takes precedence
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved sketch to %s (%s)\n", saveFile, metrics.HumanBytes(det.Bytes()))
	}

	switch {
	case stats:
		fmt.Printf("elements:       %d\n", det.N())
		if distinct > 0 {
			fmt.Printf("distinct events:%d (id space %d)\n", distinct, det.K())
		} else {
			fmt.Printf("id space:       %d\n", det.K())
		}
		fmt.Printf("time span:      [0, %d]\n", det.MaxTime())
		if rawBytes > 0 {
			fmt.Printf("raw size:       %s (8 B per element)\n", metrics.HumanBytes(rawBytes))
		}
		fmt.Printf("sketch size:    %s\n", metrics.HumanBytes(det.Bytes()))
		if buildTime > 0 {
			fmt.Printf("build time:     %v\n", buildTime)
		}
	case point:
		b, err := det.Burstiness(e, t, tau)
		if err != nil {
			return err
		}
		fmt.Printf("b_%d(%d) ≈ %.1f (τ=%d)\n", e, t, b, tau)
	case times:
		ranges, err := det.BurstyTimes(e, theta, tau)
		if err != nil {
			return err
		}
		if len(ranges) == 0 {
			fmt.Printf("event %d never reaches burstiness %.0f (τ=%d)\n", e, theta, tau)
			return nil
		}
		for _, r := range ranges {
			fmt.Printf("[%d, %d)\n", r.Start, r.End)
		}
	case evts:
		ids, err := det.BurstyEvents(t, theta, tau)
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Printf("no event reaches burstiness %.0f at t=%d (τ=%d)\n", theta, t, tau)
			return nil
		}
		for _, id := range ids {
			b, err := det.Burstiness(id, t, tau)
			if err != nil {
				return fmt.Errorf("burstiness of event %d: %w", id, err)
			}
			fmt.Printf("event %-8d b ≈ %.1f\n", id, b)
		}
	default:
		if saveFile == "" {
			return fmt.Errorf("pass one of -point, -times, -events, -stats (or -save)")
		}
	}
	return nil
}
