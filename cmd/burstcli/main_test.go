package main

import (
	"os"
	"path/filepath"
	"testing"

	"histburst/internal/stream"
)

// writeDataset creates a small dataset file with a planted burst on event 0.
func writeDataset(t *testing.T) string {
	t.Helper()
	var s stream.Stream
	for tm := int64(0); tm < 5000; tm++ {
		s = append(s, stream.Element{Event: 1, Time: tm})
		if tm >= 3000 && tm < 3200 {
			for j := 0; j < 5; j++ {
				s = append(s, stream.Element{Event: 0, Time: tm})
			}
		}
	}
	path := filepath.Join(t.TempDir(), "data.hbst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.Write(f, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueries(t *testing.T) {
	in := writeDataset(t)
	// Each query mode executes without error.
	if err := run(in, "", "", true, false, false, false, 0, 3199, 200, 100, 2, 1); err != nil {
		t.Fatalf("point: %v", err)
	}
	if err := run(in, "", "", false, true, false, false, 0, 0, 200, 300, 2, 1); err != nil {
		t.Fatalf("times: %v", err)
	}
	if err := run(in, "", "", false, false, true, false, 0, 3199, 200, 300, 2, 1); err != nil {
		t.Fatalf("events: %v", err)
	}
	if err := run(in, "", "", false, false, false, true, 0, 0, 200, 0, 2, 1); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestRunSaveAndLoadSketch(t *testing.T) {
	in := writeDataset(t)
	sk := filepath.Join(t.TempDir(), "sk.hbsk")
	if err := run(in, "", sk, false, false, false, false, 0, 0, 200, 0, 2, 1); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(sk); err != nil {
		t.Fatalf("sketch file missing: %v", err)
	}
	// Query from the saved sketch without the dataset.
	if err := run("", sk, "", true, false, false, false, 0, 3199, 200, 0, 2, 1); err != nil {
		t.Fatalf("query from sketch: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "", true, false, false, false, 0, 0, 100, 0, 2, 1); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("/no/such/file", "", "", true, false, false, false, 0, 0, 100, 0, 2, 1); err == nil {
		t.Error("missing dataset file accepted")
	}
	in := writeDataset(t)
	if err := run(in, "", "", false, false, false, false, 0, 0, 100, 0, 2, 1); err == nil {
		t.Error("no query mode accepted")
	}
	if err := run(in, "", "", true, false, false, false, 0, 0, -5, 0, 2, 1); err == nil {
		t.Error("negative tau accepted")
	}
}
