package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"histburst/internal/segstore"
	"histburst/internal/subscribe"
)

func TestParseEvents(t *testing.T) {
	got, err := parseEvents(" 3, 7 ,12 ")
	if err != nil || len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 12 {
		t.Fatalf("parseEvents = %v, %v", got, err)
	}
	for _, bad := range []string{"", " ", ",", "3,x", "-1"} {
		if _, err := parseEvents(bad); err == nil {
			t.Errorf("parseEvents(%q) accepted", bad)
		}
	}
}

func TestAlertLineRendering(t *testing.T) {
	a := subscribe.Alert{Sub: 3, Event: 7, Time: 105, Burstiness: 12.5, Theta: 4, Tau: 100}
	line := alertLine(a)
	for _, want := range []string{"sub=3", "event=7", "t=105", "b≈12.5", "θ=4", "τ=100"} {
		if !strings.Contains(line, want) {
			t.Fatalf("alert line %q missing %q", line, want)
		}
	}
	a.Gap = 4
	a.Envelope = &segstore.ErrorEnvelope{Degraded: true, MissingElements: 9, Bound: 2.5}
	line = alertLine(a)
	if !strings.Contains(line, "+4 dropped") || !strings.Contains(line, "degraded") {
		t.Fatalf("gap/envelope not rendered: %q", line)
	}
}

func TestRunAlertCmdValidation(t *testing.T) {
	cases := []struct {
		cmd  string
		args []string
	}{
		{"subscribe", nil}, // no transport
		{"subscribe", []string{"-addr", "x", "-http", "y", "-events", "1"}},    // both transports
		{"subscribe", []string{"-http", "http://x"}},                           // no events
		{"subscribe", []string{"-addr", "x", "-events", "1", "-webhook", "w"}}, // webhook over wire
		{"unsubscribe", []string{"-http", "http://x"}},                         // no id
		{"alerts", []string{"-addr", "localhost:1"}},                           // wire alerts are conn-scoped
	}
	for _, c := range cases {
		if err := runAlertCmd(c.cmd, c.args); err == nil {
			t.Errorf("%s %v accepted", c.cmd, c.args)
		}
	}
}

// fakeAlertAPI emulates burstd's subscription endpoints and a two-alert SSE
// stream, so the HTTP legs of the subcommands run end to end without a
// server binary.
func fakeAlertAPI(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/subscriptions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":42}`)
	})
	mux.HandleFunc("DELETE /v1/subscriptions/42", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("DELETE /v1/subscriptions/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such subscription", http.StatusNotFound)
	})
	mux.HandleFunc("GET /v1/alerts/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: gap\ndata: {\"dropped\":2}\n\n")
		fmt.Fprint(w, "id: 1\nevent: alert\ndata: {\"seq\":1,\"sub\":42,\"event\":7,\"t\":105,\"burstiness\":8,\"theta\":4,\"tau\":100}\n\n")
		fmt.Fprint(w, "id: 2\nevent: alert\ndata: {\"seq\":2,\"sub\":42,\"event\":7,\"t\":300,\"burstiness\":9,\"theta\":4,\"tau\":100}\n\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPSubcommandsEndToEnd(t *testing.T) {
	ts := fakeAlertAPI(t)
	id, err := httpSubscribe(ts.URL, []uint64{7}, 4, 100, 0, "")
	if err != nil || id != 42 {
		t.Fatalf("httpSubscribe = %d, %v", id, err)
	}
	// The stream carries a gap frame plus two alerts; -n 2 terminates after
	// both without waiting on the (closed) stream.
	if err := followSSE(ts.URL, "42", 2); err != nil {
		t.Fatalf("followSSE: %v", err)
	}
	if err := httpUnsubscribe(ts.URL, 42); err != nil {
		t.Fatalf("httpUnsubscribe: %v", err)
	}
	if err := httpUnsubscribe(ts.URL, 7); err == nil {
		t.Fatal("unsubscribe of unknown id succeeded")
	}
}
