package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func listenAt(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// appendSink records elements posted to a fake burstd, optionally failing
// the first `failFirst` requests with the given status.
type appendSink struct {
	got       atomic.Int64
	requests  atomic.Int64
	failFirst int64
	status    int
}

func (a *appendSink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := a.requests.Add(1)
		if n <= a.failFirst {
			w.WriteHeader(a.status)
			return
		}
		var req struct {
			Elements []element `json:"elements"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(400)
			return
		}
		a.got.Add(int64(len(req.Elements)))
		fmt.Fprint(w, `{"appended":`, len(req.Elements), `}`)
	})
}

// testForwarder returns a forwarder with sleeps captured instead of slept.
func testForwarder(url string, batch int) (*forwarder, *[]time.Duration) {
	f := newForwarder(url, batch, nil)
	var slept []time.Duration
	f.sleep = func(d time.Duration) { slept = append(slept, d) }
	return f, &slept
}

func TestForwarderBatchesAndFlushes(t *testing.T) {
	sink := &appendSink{}
	ts := httptest.NewServer(sink.handler())
	defer ts.Close()
	f, _ := testForwarder(ts.URL, 3)
	for i := 0; i < 7; i++ {
		if err := f.add(uint64(i), int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.flush(); err != nil {
		t.Fatal(err)
	}
	if sink.got.Load() != 7 {
		t.Fatalf("server saw %d elements, want 7", sink.got.Load())
	}
	// 3 + 3 full batches, then the 1-element tail.
	if sink.requests.Load() != 3 {
		t.Fatalf("%d requests, want 3", sink.requests.Load())
	}
	// flush with nothing queued is a no-op.
	if err := f.flush(); err != nil || sink.requests.Load() != 3 {
		t.Fatalf("empty flush: err=%v requests=%d", err, sink.requests.Load())
	}
}

func TestForwarderRetriesThrough503(t *testing.T) {
	sink := &appendSink{failFirst: 3, status: http.StatusServiceUnavailable}
	ts := httptest.NewServer(sink.handler())
	defer ts.Close()
	f, slept := testForwarder(ts.URL, 2)
	f.add(1, 10) //nolint:errcheck
	if err := f.add(2, 20); err != nil {
		t.Fatalf("batch should survive three 503s: %v", err)
	}
	if sink.got.Load() != 2 {
		t.Fatalf("server saw %d elements", sink.got.Load())
	}
	if len(*slept) != 3 {
		t.Fatalf("%d backoffs, want 3", len(*slept))
	}
	// Backoff grows (jitter keeps each within [d/2, 3d/2], and the base
	// doubles, so attempt 3 must exceed attempt 1's minimum ceiling).
	if (*slept)[2] <= (*slept)[0]/2 {
		t.Fatalf("backoff not growing: %v", *slept)
	}
}

func TestForwarderSurvivesServerRestart(t *testing.T) {
	// A dead listener (connection refused) for the first attempts, then a
	// live server on the same address — the restart scenario.
	sink := &appendSink{}
	ts := httptest.NewServer(sink.handler())
	addr := ts.URL
	ts.Close() // server "crashes"

	f, _ := testForwarder(addr+"/v1/append", 1)
	restarted := false
	var ts2 *httptest.Server
	f.sleep = func(time.Duration) {
		if !restarted {
			restarted = true
			l := httptest.NewUnstartedServer(sink.handler())
			l.Listener.Close()
			// Rebind the original address; if the OS refuses, skip.
			ln, err := listenAt(strings.TrimPrefix(addr, "http://"))
			if err != nil {
				t.Skipf("cannot rebind %s: %v", addr, err)
			}
			l.Listener = ln
			l.Start()
			ts2 = l
		}
	}
	if err := f.add(7, 70); err != nil {
		t.Fatalf("replay did not survive restart: %v", err)
	}
	if ts2 != nil {
		defer ts2.Close()
	}
	if sink.got.Load() != 1 {
		t.Fatalf("server saw %d elements", sink.got.Load())
	}
}

func TestForwarderGivesUpOnPermanentRejection(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	f, slept := testForwarder(ts.URL, 1)
	if err := f.add(1, 10); err == nil {
		t.Fatal("400 should be terminal")
	}
	if len(*slept) != 0 {
		t.Fatalf("retried a permanent rejection: %v", *slept)
	}
}

func TestForwarderGivesUpAfterRetryBudget(t *testing.T) {
	sink := &appendSink{failFirst: 1 << 30, status: http.StatusServiceUnavailable}
	ts := httptest.NewServer(sink.handler())
	defer ts.Close()
	f, slept := testForwarder(ts.URL, 1)
	f.retries = 4
	if err := f.add(1, 10); err == nil {
		t.Fatal("endless 503s should eventually error")
	}
	if len(*slept) != 3 {
		t.Fatalf("%d backoffs for 4 attempts, want 3", len(*slept))
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	f := newForwarder("http://unused", 1, nil)
	for attempt := 1; attempt < 12; attempt++ {
		for i := 0; i < 50; i++ {
			d := f.backoff(attempt)
			if d < f.base/2 || d > f.cap*3/2 {
				t.Fatalf("attempt %d: backoff %v outside [base/2, cap*1.5]", attempt, d)
			}
		}
	}
}

// TestProcessForwardsWhileReporting runs the full pipeline with a live
// sink: every mapped element reaches the server and local reports still
// work.
func TestProcessForwardsWhileReporting(t *testing.T) {
	sink := &appendSink{}
	ts := httptest.NewServer(sink.handler())
	defer ts.Close()
	f, _ := testForwarder(ts.URL, 16)
	input := "100 #a\n200 #a #b\n300 #b\n"
	var out strings.Builder
	if err := process(strings.NewReader(input), &out, 64, 100, 0, 2, 2, "", f); err != nil {
		t.Fatal(err)
	}
	if sink.got.Load() != 4 {
		t.Fatalf("server saw %d elements, want 4", sink.got.Load())
	}
	if !strings.Contains(out.String(), "forwarded 4 elements") {
		t.Fatalf("no forward summary:\n%s", out.String())
	}
}
