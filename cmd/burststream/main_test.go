package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"histburst"
)

// synthInput renders a message stream with a #fire burst at t in
// [5000, 5300).
func synthInput() string {
	var b strings.Builder
	for tm := int64(0); tm < 10_000; tm += 5 {
		fmt.Fprintf(&b, "%d routine chatter about #weather today\n", tm)
		if tm >= 5000 && tm < 5300 {
			for j := 0; j < 6; j++ {
				fmt.Fprintf(&b, "%d breaking: #fire downtown!\n", tm)
			}
		}
	}
	return b.String()
}

func TestProcessReportsBurst(t *testing.T) {
	var out strings.Builder
	err := process(strings.NewReader(synthInput()), &out, 1024, 600, 600, 3, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "#fire") {
		t.Fatalf("burst report missing #fire:\n%s", s)
	}
	if !strings.Contains(s, "done:") {
		t.Fatalf("no final summary:\n%s", s)
	}
	// Reports were emitted at the cadence.
	if strings.Count(s, "top bursting") < 3 {
		t.Fatalf("expected periodic reports:\n%s", s)
	}
}

func TestProcessSkipsGarbageLines(t *testing.T) {
	input := "notanumber hello\n42\n100 no hashtags here\n200 #ok fine\n"
	var out strings.Builder
	if err := process(strings.NewReader(input), &out, 64, 10, 0, 2, 2, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 lines, 3 skipped, 1 mentions") {
		t.Fatalf("accounting wrong:\n%s", out.String())
	}
}

func TestProcessSaveAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.hbsk")
	var out strings.Builder
	if err := process(strings.NewReader(synthInput()), &out, 1024, 600, 0, 3, 2, path, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	det, err := histburst.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	// Event 0 is #weather (first hashtag seen), event 1 is #fire.
	b, err := det.Burstiness(1, 5299, 600)
	if err != nil {
		t.Fatal(err)
	}
	if b < 100 {
		t.Fatalf("reloaded sketch lost the burst: b = %v", b)
	}
}

func TestProcessSkipsAheadOverGaps(t *testing.T) {
	// A long silent gap must produce one catch-up report, not one per
	// elapsed interval.
	input := "0 hello #a\n1000000 again #a\n"
	var out strings.Builder
	if err := process(strings.NewReader(input), &out, 64, 10, 10, 2, 2, "", nil); err != nil {
		t.Fatal(err)
	}
	// One report at the latest passed boundary plus the final one.
	if n := strings.Count(out.String(), "top bursting"); n != 2 {
		t.Fatalf("expected 2 reports, got %d:\n%s", n, out.String())
	}
}

func TestProcessValidation(t *testing.T) {
	if err := process(strings.NewReader(""), &strings.Builder{}, 8, 10, 0, 0, 2, "", nil); err == nil {
		t.Error("top=0 accepted")
	}
	if err := process(strings.NewReader(""), &strings.Builder{}, 8, 0, 0, 3, 2, "", nil); err == nil {
		t.Error("tau=0 accepted")
	}
	// Empty input is fine.
	var out strings.Builder
	if err := process(strings.NewReader(""), &out, 8, 10, 0, 3, 2, "", nil); err != nil {
		t.Fatal(err)
	}
}
