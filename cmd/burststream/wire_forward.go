package main

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"histburst/internal/stream"
	"histburst/internal/wire"
)

// A replayer receives mapped elements and delivers them to a burstd; the
// HTTP forwarder and the HBP1 wireForwarder both satisfy it, selected by
// the -forward scheme.
type replayer interface {
	add(e uint64, t int64) error
	flush() error
	totals() (sent, posts, retried int64)
}

func (f *forwarder) totals() (int64, int64, int64) { return f.sent, f.posts, f.retried }

// wireForwarder replays the mapped stream over one persistent HBP1
// connection with the same retry discipline as the HTTP forwarder —
// jittered exponential backoff, stretched to the server's Retry-After
// hint when a NACK carries one. Where HTTP re-posts a whole failed batch,
// the wire ack's acked-prefix contract lets a retry resend only the
// elements the server never acknowledged.
type wireForwarder struct {
	addr  string
	c     *wire.Client
	batch stream.Stream
	size  int

	retries int           // attempts per batch before giving up
	base    time.Duration // first backoff
	cap     time.Duration // backoff ceiling

	rng   *rand.Rand
	sleep func(time.Duration)                // injection point for tests
	dial  func(string) (*wire.Client, error) // injection point for tests

	sent, posts, retried int64
}

func newWireForwarder(addr string, batchSize int) *wireForwarder {
	if batchSize < 1 {
		batchSize = 1
	}
	return &wireForwarder{
		addr:    addr,
		size:    batchSize,
		retries: 8,
		base:    100 * time.Millisecond,
		cap:     5 * time.Second,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:   time.Sleep,
		dial: func(a string) (*wire.Client, error) {
			return wire.Dial(a, 10*time.Second)
		},
	}
}

// add queues one element, flushing when the batch is full.
func (f *wireForwarder) add(e uint64, t int64) error {
	f.batch = append(f.batch, stream.Element{Event: e, Time: t})
	if len(f.batch) >= f.size {
		return f.flush()
	}
	return nil
}

func (f *wireForwarder) totals() (int64, int64, int64) { return f.sent, f.posts, f.retried }

// flush streams the queued batch, retrying transient failures. Every
// attempt trims the acked prefix first, so a mid-batch connection loss or
// refusal never re-appends elements the server already committed.
func (f *wireForwarder) flush() error {
	if len(f.batch) == 0 {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < f.retries; attempt++ {
		if attempt > 0 {
			f.retried++
			f.sleep(f.backoff(attempt, lastErr))
		}
		if f.c == nil {
			c, err := f.dial(f.addr)
			if err != nil {
				lastErr = err
				continue
			}
			f.c = c
		}
		res, err := f.c.Append(f.batch)
		f.posts++
		// The client promises Appended+Rejected is a contiguous acked
		// prefix; clamp anyway so a buggy or hostile peer can never make
		// the trim run past the batch.
		acked := res.Appended + res.Rejected // delivered, whether admitted or out-of-order
		if n := int64(len(f.batch)); acked > n {
			acked = n
		}
		f.sent += acked
		f.batch = f.batch[acked:]
		if err == nil {
			f.batch = f.batch[:0]
			return nil
		}
		lastErr = err
		var nack *wire.NackError
		if !errors.As(err, &nack) {
			// Connection-level failure: the client is dead, reconnect.
			f.c.Close() //histburst:allow errdrop -- connection already failed; the append error is the answer
			f.c = nil
		}
	}
	return fmt.Errorf("forward %d elements: %w", len(f.batch), lastErr)
}

// close tears down the connection after the final flush.
func (f *wireForwarder) close() {
	if f.c != nil {
		f.c.Close() //histburst:allow errdrop -- replay finished, nothing in flight
		f.c = nil
	}
}

// backoff mirrors the HTTP forwarder's jittered exponential delay, but a
// NACK carrying a Retry-After hint raises the floor to what the server
// asked for.
func (f *wireForwarder) backoff(attempt int, cause error) time.Duration {
	d := f.base << (attempt - 1)
	if d > f.cap || d <= 0 {
		d = f.cap
	}
	half := d / 2
	delay := half + time.Duration(f.rng.Int63n(int64(d)+1))
	var nack *wire.NackError
	if errors.As(cause, &nack) && nack.RetryAfter > delay {
		delay = nack.RetryAfter
	}
	return delay
}
