package main

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"histburst/internal/segstore"
	"histburst/internal/stream"
	"histburst/internal/subscribe"
	"histburst/internal/wire"
)

// wireBackend fronts a real store for forwarder tests, mirroring how
// burstd implements the wire Backend seam.
type wireBackend struct {
	store  *segstore.Store
	stager *segstore.Stager
}

func newWireBackend(t *testing.T) *wireBackend {
	t.Helper()
	s, err := segstore.Open(t.TempDir(), segstore.Config{
		K: 64, Gamma: 2, Seed: 7, D: 3, W: 32, WALSync: segstore.WALSyncOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})
	return &wireBackend{store: s, stager: segstore.NewStager(s)}
}

func (b *wireBackend) Snapshot() *segstore.Snapshot { return b.store.Snapshot() }

func (b *wireBackend) Alerts() *subscribe.Hub { return nil }

func (b *wireBackend) Ingest(elems stream.Stream) wire.IngestResult {
	res := b.stager.Append(elems)
	if res.Err != nil {
		return wire.IngestResult{Err: res.Err}
	}
	return wire.IngestResult{
		Appended: res.Appended, Rejected: res.Rejected,
		Elements: b.store.N(), OutOfOrder: b.store.Rejected(),
	}
}

func (b *wireBackend) Stats() wire.Stats {
	sn := b.store.Snapshot()
	return wire.Stats{
		Elements: sn.N(), EventSpace: b.store.K(), MaxTime: sn.MaxTime(),
		Bytes: int64(sn.Bytes()), Generation: sn.Generation(), Segments: len(sn.Segments()),
	}
}

func serveWire(t *testing.T, b wire.Backend, window int64) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &wire.Server{Backend: b, Window: window, Logf: func(string, ...any) {}}
	go srv.Serve(l) //histburst:allow errdrop -- listener closed by cleanup ends Serve
	t.Cleanup(func() {
		l.Close() //histburst:allow errdrop -- test teardown
		srv.Close()
	})
	return l.Addr().String()
}

func TestWireForwarderDeliversBatches(t *testing.T) {
	b := newWireBackend(t)
	addr := serveWire(t, b, 0)
	f := newWireForwarder(addr, 8)
	defer f.close()

	const n = 100
	for i := 0; i < n; i++ {
		if err := f.add(uint64(i%16), int64(i)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := f.flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	sent, posts, retried := f.totals()
	if sent != n {
		t.Fatalf("sent %d elements, want %d", sent, n)
	}
	if wantPosts := int64((n + 7) / 8); posts != wantPosts {
		t.Fatalf("posts %d, want %d", posts, wantPosts)
	}
	if retried != 0 {
		t.Fatalf("unexpected retries: %d", retried)
	}
	if got := b.store.N(); got != n {
		t.Fatalf("store holds %d elements, want %d", got, n)
	}
}

func TestWireForwarderRetriesDialFailures(t *testing.T) {
	b := newWireBackend(t)
	addr := serveWire(t, b, 0)
	f := newWireForwarder(addr, 4)
	defer f.close()
	f.sleep = func(time.Duration) {}
	failures := 2
	realDial := f.dial
	f.dial = func(a string) (*wire.Client, error) {
		if failures > 0 {
			failures--
			return nil, fmt.Errorf("synthetic dial failure")
		}
		return realDial(a)
	}

	for i := 0; i < 4; i++ {
		if err := f.add(uint64(i), int64(i)); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	_, _, retried := f.totals()
	if retried != 2 {
		t.Fatalf("retried %d times, want 2", retried)
	}
	if got := b.store.N(); got != 4 {
		t.Fatalf("store holds %d elements, want 4", got)
	}
}

// midNackBackend records every element the server commits while refusing
// one designated Ingest call, so tests can prove the forwarder's
// trim-and-retry around a mid-stream NACK never drops an unacked element.
type midNackBackend struct {
	*wireBackend
	refuse int // 1-based Ingest call to refuse; all others accept

	mu    sync.Mutex
	calls int
	seen  map[int64]int // element time → times committed
}

func (b *midNackBackend) Ingest(elems stream.Stream) wire.IngestResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls++
	if b.calls == b.refuse {
		return wire.IngestResult{Refused: wire.NackInternal, Message: "forced mid-stream refusal"}
	}
	for _, el := range elems {
		b.seen[el.Time]++
	}
	return wire.IngestResult{Appended: int64(len(elems)), Elements: int64(len(b.seen))}
}

func TestWireForwarderRetriesNackedMiddleChunk(t *testing.T) {
	// Chunk 2 of the first attempt is refused while chunk 3 behind it is
	// accepted: the client must report only the acked prefix (chunk 1), and
	// the forwarder's trim-and-retry must resend everything after it.
	b := &midNackBackend{wireBackend: newWireBackend(t), refuse: 2, seen: map[int64]int{}}
	addr := serveWire(t, b, 4) // 4-element window → a 12-element flush streams 3 chunks
	f := newWireForwarder(addr, 12)
	defer f.close()
	f.sleep = func(time.Duration) {}

	for i := 0; i < 12; i++ {
		if err := f.add(uint64(i%8), int64(100+i)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if len(f.batch) != 0 {
		t.Fatalf("%d elements left unflushed", len(f.batch))
	}
	// Nothing lost: every element — in particular refused chunk 2 (times
	// 104–107) — was eventually committed.
	for i := 0; i < 12; i++ {
		if b.seen[int64(100+i)] == 0 {
			t.Fatalf("element at time %d was never committed", 100+i)
		}
	}
	// The acked prefix was not resent: retrying chunk 1 would double-count.
	for i := 0; i < 4; i++ {
		if n := b.seen[int64(100+i)]; n != 1 {
			t.Fatalf("prefix element at time %d committed %d times, want exactly 1", 100+i, n)
		}
	}
	if _, _, retried := f.totals(); retried != 1 {
		t.Fatalf("retried %d times, want 1", retried)
	}
}

func TestWireForwarderGivesUpAfterRetries(t *testing.T) {
	f := newWireForwarder("unreachable", 2)
	f.sleep = func(time.Duration) {}
	f.retries = 3
	f.dial = func(string) (*wire.Client, error) {
		return nil, fmt.Errorf("synthetic dial failure")
	}
	if err := f.add(1, 1); err != nil {
		t.Fatalf("add below batch size flushed: %v", err)
	}
	err := f.add(2, 2)
	if err == nil || !strings.Contains(err.Error(), "synthetic dial failure") {
		t.Fatalf("want the dial failure surfaced, got %v", err)
	}
	if _, _, retried := f.totals(); retried != 2 {
		t.Fatalf("retried %d times, want 2", retried)
	}
}

func TestWireForwarderBackoffHonorsRetryAfter(t *testing.T) {
	f := newWireForwarder("x", 1)
	f.rng = rand.New(rand.NewSource(1))
	nack := &wire.NackError{Code: wire.NackDraining, RetryAfter: 42 * time.Second}
	if d := f.backoff(1, nack); d != 42*time.Second {
		t.Fatalf("backoff with Retry-After hint = %v, want 42s", d)
	}
	if d := f.backoff(1, fmt.Errorf("plain")); d > f.cap*3/2 {
		t.Fatalf("plain backoff %v beyond jittered cap", d)
	}
}
