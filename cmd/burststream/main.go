// Command burststream ingests a live message stream from stdin — the
// paper's information stream M — maps each message to event ids via its
// hashtags (the mapping h of Section II-A), and reports the top bursting
// events at a fixed cadence of stream time.
//
// Input: one message per line, "<unix-timestamp> <text with #hashtags>".
// Lines without a parsable timestamp or without hashtags are counted and
// skipped.
//
//	burstgen -dataset olympicrio -n 100000 -out rio.hbst   # or any source
//	... | burststream -tau 3600 -report 21600 -top 5
//
// At end of input the summary can be persisted with -save for later
// burstcli/burstd querying. With -forward the mapped elements are also
// replayed to a running burstd in batches, with jittered exponential
// retry/backoff so the replay survives server restarts and load shedding.
// An http:// URL replays via POST /v1/append; an hbp://host:port address
// streams over the HBP1 wire protocol, where retries resend only the
// unacknowledged suffix of a batch and honor the server's Retry-After
// NACK hint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"histburst"
	"histburst/internal/metrics"
	"histburst/internal/textmap"
)

func main() {
	var (
		k      = flag.Uint64("k", 4096, "event-id space (max distinct hashtags tracked)")
		tau    = flag.Int64("tau", 3600, "burst span τ for reports")
		report = flag.Int64("report", 21600, "report cadence in stream-time units (0 = only final)")
		top    = flag.Int("top", 5, "events per report")
		gamma  = flag.Float64("gamma", 4, "PBE-2 error cap γ")
		save   = flag.String("save", "", "persist the final sketch to this file")
		fwdURL = flag.String("forward", "", "replay elements to this burstd: an /v1/append URL or hbp://host:port (retries with backoff)")
		fwdN   = flag.Int("forward-batch", 256, "elements per forwarded append request")
	)
	flag.Parse()
	var fwd replayer
	if *fwdURL != "" {
		if addr, ok := strings.CutPrefix(*fwdURL, "hbp://"); ok {
			wf := newWireForwarder(addr, *fwdN)
			defer wf.close()
			fwd = wf
		} else {
			fwd = newForwarder(*fwdURL, *fwdN, nil)
		}
	}
	if err := process(os.Stdin, os.Stdout, *k, *tau, *report, *top, *gamma, *save, fwd); err != nil {
		fmt.Fprintln(os.Stderr, "burststream:", err)
		os.Exit(1)
	}
}

func process(r io.Reader, w io.Writer, k uint64, tau, report int64, top int, gamma float64, save string, fwd replayer) error {
	if top <= 0 {
		return fmt.Errorf("-top must be positive, got %d", top)
	}
	if tau <= 0 {
		return fmt.Errorf("-tau must be positive, got %d", tau)
	}
	det, err := histburst.New(k, histburst.WithPBE2(gamma))
	if err != nil {
		return err
	}
	mapper := textmap.NewHashtagMapper(k)

	var (
		lines, skipped int64
		nextReport     int64
		started        bool
	)
	emit := func(at int64) error {
		hits, err := det.TopBursty(at, top, tau)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "t=%d top bursting (τ=%d):\n", at, tau)
		vocab := mapper.Vocabulary()
		for _, h := range hits {
			if h.Burstiness <= 0 {
				continue
			}
			name := fmt.Sprintf("event %d", h.Event)
			if h.Event < uint64(len(vocab)) {
				name = "#" + vocab[h.Event]
			}
			fmt.Fprintf(w, "  %-24s b ≈ %.0f\n", name, h.Burstiness)
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lines++
		line := sc.Text()
		sp := strings.IndexByte(line, ' ')
		if sp <= 0 {
			skipped++
			continue
		}
		ts, err := strconv.ParseInt(line[:sp], 10, 64)
		if err != nil {
			skipped++
			continue
		}
		ids := mapper.Map(line[sp+1:])
		if len(ids) == 0 {
			skipped++
			continue
		}
		for _, id := range ids {
			det.Append(id, ts)
			if fwd != nil {
				if err := fwd.add(id, ts); err != nil {
					return err
				}
			}
		}
		if !started {
			started = true
			if report > 0 {
				nextReport = ts + report
			}
		}
		if report > 0 && ts >= nextReport {
			// Emit the boundary just passed; across a long silent gap only
			// the latest boundary is interesting, so skip ahead rather than
			// replaying one report per elapsed interval.
			latest := ts - (ts-nextReport)%report
			if err := emit(latest); err != nil {
				return err
			}
			nextReport = latest + report
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if fwd != nil {
		if err := fwd.flush(); err != nil {
			return err
		}
		sent, posts, retried := fwd.totals()
		fmt.Fprintf(w, "forwarded %d elements in %d requests (%d retries)\n",
			sent, posts, retried)
	}
	det.Finish()
	fmt.Fprintf(w, "done: %d lines, %d skipped, %d mentions of %d events, sketch %s\n",
		lines, skipped, det.N(), mapper.Events(), metrics.HumanBytes(det.Bytes()))
	if started {
		if err := emit(det.MaxTime()); err != nil {
			return err
		}
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := det.Save(f); err != nil {
			f.Close() //histburst:allow errdrop -- best-effort cleanup; the Save error takes precedence
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "saved sketch to %s\n", save)
	}
	return nil
}
