package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// A forwarder replays the mapped stream to a burstd /v1/append endpoint in
// batches, retrying transient failures (connection errors, 503 shedding,
// 429, 5xx) with jittered exponential backoff so a replay client rides out
// server restarts instead of dying on the first refused connection.
type forwarder struct {
	url    string
	client *http.Client
	batch  []element
	size   int

	retries int           // attempts per batch before giving up
	base    time.Duration // first backoff
	cap     time.Duration // backoff ceiling

	rng   *rand.Rand
	sleep func(time.Duration) // injection point for tests

	sent, posts, retried int64
}

type element struct {
	Event uint64 `json:"event"`
	Time  int64  `json:"time"`
}

func newForwarder(url string, batchSize int, client *http.Client) *forwarder {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if batchSize < 1 {
		batchSize = 1
	}
	return &forwarder{
		url:     url,
		client:  client,
		size:    batchSize,
		retries: 8,
		base:    100 * time.Millisecond,
		cap:     5 * time.Second,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:   time.Sleep,
	}
}

// add queues one element, flushing when the batch is full.
func (f *forwarder) add(e uint64, t int64) error {
	f.batch = append(f.batch, element{Event: e, Time: t})
	if len(f.batch) >= f.size {
		return f.flush()
	}
	return nil
}

// flush posts the queued batch, retrying transient failures with backoff.
func (f *forwarder) flush() error {
	if len(f.batch) == 0 {
		return nil
	}
	body, err := json.Marshal(map[string]any{"elements": f.batch})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < f.retries; attempt++ {
		if attempt > 0 {
			f.retried++
			f.sleep(f.backoff(attempt))
		}
		retryable, err := f.post(body)
		if err == nil {
			f.sent += int64(len(f.batch))
			f.posts++
			f.batch = f.batch[:0]
			return nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return fmt.Errorf("forward %d elements: %w", len(f.batch), lastErr)
}

// post performs one append attempt; retryable reports whether the failure
// is worth another try (connection trouble or a server telling us to back
// off) as opposed to a request the server will never accept.
func (f *forwarder) post(body []byte) (retryable bool, err error) {
	resp, err := f.client.Post(f.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return true, err // connection refused/reset, timeout, DNS — retry
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //histburst:allow errdrop -- draining the body for connection reuse; the status code is the answer
	switch {
	case resp.StatusCode < 300:
		return false, nil
	case resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode >= 500:
		return true, fmt.Errorf("server busy: %s", resp.Status)
	default:
		return false, fmt.Errorf("rejected: %s", resp.Status)
	}
}

// backoff returns the delay before the given retry attempt: exponential in
// the attempt number, capped, with ±50% jitter so a fleet of replay
// clients doesn't stampede a restarting server in lockstep.
func (f *forwarder) backoff(attempt int) time.Duration {
	d := f.base << (attempt - 1)
	if d > f.cap || d <= 0 {
		d = f.cap
	}
	half := d / 2
	return half + time.Duration(f.rng.Int63n(int64(d)+1))
}
