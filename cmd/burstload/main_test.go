package main

import (
	"testing"

	"histburst/internal/loadgen"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		spec string
		want loadgen.Mix
		ok   bool
	}{
		{"append=1,point=4,bursty=1", loadgen.Mix{Append: 1, Point: 4, Bursty: 1}, true},
		{"append=1,subscribe=2", loadgen.Mix{Append: 1, Subscribe: 2}, true},
		{"subscribe=1", loadgen.Mix{Subscribe: 1}, true},
		{"point=8", loadgen.Mix{Point: 8}, true},
		{" append=2 , bursty=3 ", loadgen.Mix{Append: 2, Bursty: 3}, true},
		{"append=0,point=0,bursty=0", loadgen.Mix{}, false}, // no weight
		{"append=1,unknown=2", loadgen.Mix{}, false},
		{"append", loadgen.Mix{}, false},
		{"append=-1", loadgen.Mix{}, false},
		{"append=x", loadgen.Mix{}, false},
	}
	for _, c := range cases {
		got, err := parseMix(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("parseMix(%q): err=%v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseMix(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestEventDrawsFoldIntoIDSpace(t *testing.T) {
	events, err := eventDraws(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no draws")
	}
	for i, e := range events {
		if e >= 16 {
			t.Fatalf("draw %d = %d escapes id space 16", i, e)
		}
	}
	// The workload's popularity skew must survive the fold: the draw list
	// is not a uniform cycle.
	counts := map[uint64]int{}
	for _, e := range events {
		counts[e]++
	}
	if len(counts) < 2 {
		t.Fatalf("degenerate draw population: %v", counts)
	}
}
