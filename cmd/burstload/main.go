// Command burstload drives sustained load against a running burstd and
// reports throughput and latency quantiles per transport, so the JSON
// serving path and the HBP1 wire path can be compared on identical
// workloads.
//
// Two disciplines (see internal/loadgen): closed loop (fixed concurrency,
// the default) and open loop (-rate, fixed arrival rate with latency
// measured from the scheduled arrival — queueing counts). The op mix draws
// append batches from a workload-skewed event population (the olympicrio
// spec) plus batched point queries, bursty-times/bursty-events queries
// over the served history, and — with subscribe=N in -mix — standing-query
// ops that arm a subscription, trip it with a burst, and clock the
// commit-to-alert delivery; those latencies land in the report as the
// "alert" pseudo-kind.
//
//	burstd -n 200000 -addr :8427 -wire-addr :8428 &
//	burstload -http http://localhost:8427 -wire localhost:8428 -duration 10s
//	burstload -wire localhost:8428 -rate 5000 -c 32 -mix append=1,point=8,bursty=1
//
// -json writes the combined record; -bench prints `go test -bench`-style
// rows (BenchmarkServe/<transport>/<kind>/p99 ...) for cmd/benchjson.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"histburst/internal/loadgen"
	"histburst/internal/wire"
	"histburst/internal/workload"
)

func main() {
	var (
		httpURL  = flag.String("http", "", "burstd base URL for the JSON/HTTP transport (e.g. http://localhost:8427)")
		wireAddr = flag.String("wire", "", "burstd HBP1 address for the wire transport (e.g. localhost:8428)")
		duration = flag.Duration("duration", 10*time.Second, "run length per transport")
		workers  = flag.Int("c", 16, "concurrent workers")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in ops/sec (0 = closed loop)")
		mixSpec  = flag.String("mix", "append=1,point=4,bursty=1", "op mix weights, kind=weight comma-separated (kinds: append, point, bursty, subscribe)")
		batch    = flag.Int("append-batch", 256, "elements per append op")
		points   = flag.Int("point-batch", 16, "queries per point op")
		tau      = flag.Int64("tau", 86_400, "burst span τ for every query")
		theta    = flag.Float64("theta", 100, "bursty-query threshold θ")
		seed     = flag.Int64("seed", 1, "workload and mix seed")
		jsonOut  = flag.String("json", "", "write the combined JSON record to this file")
		bench    = flag.Bool("bench", false, "print go-bench-style result rows for cmd/benchjson")
	)
	flag.Parse()
	if err := run(*httpURL, *wireAddr, *duration, *workers, *rate, *mixSpec,
		*batch, *points, *tau, *theta, *seed, *jsonOut, *bench, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "burstload:", err)
		os.Exit(1)
	}
}

// parseMix parses "append=1,point=4,bursty=1"; omitted kinds weigh zero.
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("mix term %q: want kind=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix term %q: bad weight", part)
		}
		switch loadgen.Kind(name) {
		case loadgen.KindAppend:
			m.Append = w
		case loadgen.KindPoint:
			m.Point = w
		case loadgen.KindBursty:
			m.Bursty = w
		case loadgen.KindSubscribe:
			m.Subscribe = w
		default:
			return m, fmt.Errorf("mix term %q: unknown kind", part)
		}
	}
	if m.Append+m.Point+m.Bursty+m.Subscribe == 0 {
		return m, fmt.Errorf("mix %q has no weight", spec)
	}
	return m, nil
}

// eventDraws materializes the olympicrio workload and returns its event
// sequence — a draw list carrying the spec's popularity skew and burst
// structure, folded into the server's event-id space.
func eventDraws(seed int64, k uint64) ([]uint64, error) {
	st, err := workload.Generate(workload.OlympicRioSpec(seed, 20_000))
	if err != nil {
		return nil, err
	}
	if len(st) == 0 {
		return nil, fmt.Errorf("workload generated no elements")
	}
	events := make([]uint64, len(st))
	for i, el := range st {
		events[i] = el.Event
		if k > 0 {
			events[i] %= k
		}
	}
	return events, nil
}

type record struct {
	Mix        loadgen.Mix                `json:"mix"`
	Tau        int64                      `json:"tau"`
	Theta      float64                    `json:"theta"`
	Seed       int64                      `json:"seed"`
	Transports map[string]*loadgen.Report `json:"transports"`
}

func run(httpURL, wireAddr string, duration time.Duration, workers int, rate float64,
	mixSpec string, batch, points int, tau int64, theta float64, seed int64,
	jsonOut string, bench bool, out *os.File) error {
	if httpURL == "" && wireAddr == "" {
		return fmt.Errorf("need -http and/or -wire")
	}
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{Duration: duration, Workers: workers, Rate: rate, Mix: mix, Seed: seed}
	rec := &record{Mix: mix, Tau: tau, Theta: theta, Seed: seed, Transports: map[string]*loadgen.Report{}}

	// One event-space probe up front so both transports share a profile
	// population; the per-transport clock still starts at the live frontier.
	var k uint64
	if wireAddr != "" {
		c, err := wire.Dial(wireAddr, 10*time.Second)
		if err != nil {
			return fmt.Errorf("wire %s: %w", wireAddr, err)
		}
		k = c.Hello().K
		c.Close() //histburst:allow errdrop -- probe connection, nothing in flight
	} else {
		resp, err := http.Get(strings.TrimRight(httpURL, "/") + "/v1/stats")
		if err != nil {
			return fmt.Errorf("http %s: %w", httpURL, err)
		}
		var st struct {
			EventSpace uint64 `json:"eventSpace"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close() //histburst:allow errdrop -- response fully decoded
		if err != nil {
			return err
		}
		k = st.EventSpace
	}
	events, err := eventDraws(seed, k)
	if err != nil {
		return err
	}

	runOne := func(name string, tgt loadgen.Target) error {
		rep, err := loadgen.Run(cfg, tgt)
		if err != nil {
			return err
		}
		rec.Transports[name] = rep
		printReport(out, name, rep)
		if bench {
			for _, line := range rep.BenchLines(name) {
				fmt.Fprintln(out, line)
			}
		}
		return nil
	}

	if httpURL != "" {
		p := &loadgen.Profile{Events: events, Tau: tau, Theta: theta,
			AppendBatch: batch, PointBatch: points, K: k}
		tgt := &loadgen.HTTPTarget{
			Base: strings.TrimRight(httpURL, "/"),
			Client: &http.Client{
				Timeout:   30 * time.Second,
				Transport: &http.Transport{MaxIdleConnsPerHost: workers},
			},
			P: p,
		}
		defer tgt.Close()
		if err := tgt.Frontier(); err != nil {
			return fmt.Errorf("http %s: %w", httpURL, err)
		}
		if err := runOne("http", tgt); err != nil {
			return err
		}
	}
	if wireAddr != "" {
		p := &loadgen.Profile{Events: events, Tau: tau, Theta: theta,
			AppendBatch: batch, PointBatch: points, K: k}
		tgt, err := loadgen.DialWire(wireAddr, workers, 10*time.Second, p)
		if err != nil {
			return fmt.Errorf("wire %s: %w", wireAddr, err)
		}
		defer tgt.Close()
		if err := tgt.Frontier(); err != nil {
			return fmt.Errorf("wire %s: %w", wireAddr, err)
		}
		if err := runOne("wire", tgt); err != nil {
			return err
		}
	}

	if jsonOut != "" {
		enc, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printReport(out *os.File, transport string, rep *loadgen.Report) {
	fmt.Fprintf(out, "%s: %s loop, %d workers", transport, rep.Mode, rep.Workers)
	if rep.Mode == "open" {
		fmt.Fprintf(out, ", %.0f ops/s scheduled", rep.Rate)
	}
	fmt.Fprintf(out, ": %d ops (%.0f ops/s), %d errors\n", rep.Ops, rep.OpsPerSec, rep.Errors)
	kinds := make([]loadgen.Kind, 0, len(rep.Kinds))
	for k := range rep.Kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		ks := rep.Kinds[k]
		fmt.Fprintf(out, "  %-7s %8d ops  %9.0f ops/s  p50 %-10s p95 %-10s p99 %-10s max %s\n",
			k, ks.Ops, ks.OpsPerSec,
			time.Duration(ks.P50Ns), time.Duration(ks.P95Ns),
			time.Duration(ks.P99Ns), time.Duration(ks.MaxNs))
	}
}
