// Command burstgen generates the synthetic event-stream datasets used by
// the experiments and serializes them in histburst's binary stream format.
//
// Usage:
//
//	burstgen -dataset olympicrio -n 500000 -seed 1 -out olympicrio.hbst
//	burstgen -dataset uspolitics -n 500000 -out uspolitics.hbst
//	burstgen -dataset soccer -n 100000 -out soccer.hbst    (single event)
package main

import (
	"flag"
	"fmt"
	"os"

	"histburst/internal/stream"
	"histburst/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "olympicrio", "dataset to generate: olympicrio, uspolitics, soccer, swimming")
		n       = flag.Int64("n", 500_000, "target number of stream elements")
		seed    = flag.Int64("seed", 1, "generator seed (same seed ⇒ identical dataset)")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if err := run(*dataset, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "burstgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, n, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	var s stream.Stream
	switch dataset {
	case "olympicrio":
		var err error
		s, err = workload.Generate(workload.OlympicRioSpec(seed, n))
		if err != nil {
			return err
		}
	case "uspolitics":
		var err error
		s, err = workload.Generate(workload.USPoliticsSpec(seed, n))
		if err != nil {
			return err
		}
	case "soccer":
		p := workload.SoccerProfile(workload.SoccerID, n)
		s = workload.SingleEvent(seed, p, workload.Month).ToStream(workload.SoccerID)
	case "swimming":
		p := workload.SwimmingProfile(workload.SwimmingID, n)
		s = workload.SingleEvent(seed, p, workload.Month).ToStream(workload.SwimmingID)
	default:
		return fmt.Errorf("unknown dataset %q (want olympicrio, uspolitics, soccer or swimming)", dataset)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := stream.Write(f, s); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	lo, hi, _ := s.Span()
	fmt.Printf("wrote %s: %d elements, %d events, time span [%d, %d]\n",
		out, len(s), len(s.Events()), lo, hi)
	return nil
}
