package main

import (
	"os"
	"path/filepath"
	"testing"

	"histburst/internal/stream"
)

func TestRunGeneratesAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, ds := range []string{"olympicrio", "uspolitics", "soccer", "swimming"} {
		out := filepath.Join(dir, ds+".hbst")
		if err := run(ds, 5000, 1, out); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		s, err := stream.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: reading output: %v", ds, err)
		}
		if len(s) == 0 {
			t.Fatalf("%s: empty stream", ds)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.hbst")
	b := filepath.Join(dir, "b.hbst")
	if err := run("soccer", 3000, 7, a); err != nil {
		t.Fatal(err)
	}
	if err := run("soccer", 3000, 7, b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different files")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("soccer", 100, 1, ""); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("soccer", 0, 1, "x"); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run("nope", 100, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("soccer", 100, 1, "/no/such/dir/file"); err == nil {
		t.Error("unwritable path accepted")
	}
}
