// Command burstbench regenerates the paper's evaluation tables and figures
// (Section VI) on synthetic workloads. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	burstbench -list
//	burstbench -fig fig8
//	burstbench -all -scale 0.05 -queries 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"histburst/internal/experiments"
)

func main() {
	var (
		fig        = flag.String("fig", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		scale      = flag.Float64("scale", 0.02, "stream volume as a fraction of the paper's datasets (1.0 = full)")
		queries    = flag.Int("queries", 200, "random queries behind each accuracy number")
		seed       = flag.Int64("seed", 1, "workload and query seed")
		format     = flag.String("format", "text", "output format: text or json")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "burstbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "burstbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "burstbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before sampling
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "burstbench:", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.List() {
			fmt.Printf("%-8s  %s\n", id, experiments.Describe(id))
		}
		return
	}
	cfg := experiments.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	var ids []string
	switch {
	case *all:
		ids = experiments.List()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "burstbench: pass -fig <id>, -all, or -list")
		os.Exit(2)
	}
	var tables []experiments.Table
	for _, id := range ids {
		tbl, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "burstbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "json" {
			tables = append(tables, tbl)
			continue
		}
		fmt.Println(tbl.Format())
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "burstbench:", err)
			os.Exit(1)
		}
	}
}
