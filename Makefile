# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race race-segstore crash decay-smoke load-smoke alert-smoke lint lint-self lint-check bench bench-smoke bench-baseline bench-json bench-figures experiments fuzz clean

all: build vet test

# Full pre-merge gate: compile, static checks (vet plus the repo's own
# analyzers, including the linter's own sources), tests, race detector, the
# crash/fault-injection suite, the time-decayed compaction smoke, a
# sustained-load smoke over both serving transports, the standing-query
# alert smoke, and one iteration of every benchmark so a broken benchmark
# can't rot unnoticed.
check: build vet lint-check test race race-segstore crash decay-smoke load-smoke alert-smoke bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants go vet cannot see: decoder allocation safety,
# dropped errors, lock discipline and ordering, atomic-field access, noalloc
# hot paths, fastpath twins, goroutine shutdown, fsync-before-ack.
# See docs/ANALYZERS.md.
lint:
	$(GO) run ./cmd/histlint ./...

# The linter's own sources held to the same bar (analyzers, loader, fixtures
# runner, and the histlint command).
lint-self:
	$(GO) run ./cmd/histlint ./internal/lint ./cmd/histlint

# lint + lint-self in a single process: the loader memoizes the go/types
# pass per directory and ExpandPatterns dedupes, so the self-lint rides the
# same load instead of paying a second one. CI runs this through `check`.
lint-check:
	$(GO) run ./cmd/histlint ./... ./internal/lint ./cmd/histlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The segment store's concurrency tests are the repo's sharpest race bait
# (append vs seal vs compaction vs lock-free snapshots); run them under the
# race detector with a longer timeout and no result caching so `make check`
# always exercises them fresh.
race-segstore:
	$(GO) test -race -count 1 -run 'TestConcurrent' ./internal/segstore/ ./cmd/burstd/

# Durability gate: crash-at-every-byte sweeps over the WAL, segment, and
# manifest write paths, bit-flip corruption recovery, the subprocess
# SIGKILL ack-contract test, scrub/quarantine, and degraded-mode serving —
# all under the race detector, uncached, so `make check` re-proves the
# "no acked append is ever lost" contract on every run.
crash:
	$(GO) test -race -count 1 -run 'TestCrash|TestWAL|TestStager|TestScrub|TestCorrupt|TestDiskFault|TestQuarantine' \
		./internal/segstore/ ./internal/faultio/ ./internal/wire/ ./cmd/burstd/

# Time-decayed compaction gate under the race detector, uncached: the
# multi-week long-horizon lifecycle (recent history bit-identical to an
# undecayed store, old history inside its reported envelope, reopen
# round-trip), the downsample kernel vs its naive twin, tier-ladder
# validation, crash sweeps over the decay manifest/segment writes, and the
# burstd -decay-tiers flag end to end.
decay-smoke:
	$(GO) test -race -count 1 -run 'TestDecay|TestEqualBoundary|TestResolveDecayTiers|TestParseDecayTiers|TestCrashDuringDecay' \
		./internal/segstore/ ./cmd/burstd/

# Sustained-load smoke: burstload's closed- and open-loop engines against an
# in-process burstd over both serving transports (HTTP/JSON and the HBP1
# wire protocol), asserting every op kind completes without errors.
# BURSTLOAD_SMOKE_MS stretches the per-run length.
load-smoke:
	$(GO) test -race -count 1 -run 'TestServingLoadSmoke' ./cmd/burstd/

# Standing-query gate under the race detector, uncached: an append commits
# and the alert lands on all three delivery channels (SSE, webhook, wire
# ALERT frame), rising-edge dedup holds across a sustained burst, degraded
# histories stamp their envelope onto alerts, and a stalled SSE subscriber
# sheds instead of backpressuring ingest.
alert-smoke:
	$(GO) test -race -count 1 -run 'TestAlert|TestSubscri|TestStalledSSE|TestSSEGap|TestUnsubscribe|TestConnClose' \
		./cmd/burstd/ ./internal/wire/ ./internal/subscribe/

# Microbenchmarks plus one pass of every figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# One compile-and-run iteration of every benchmark, then the regression
# gate; part of `check`.
bench-smoke: bench-baseline
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Regression gate: re-measure the pinned segment-store benchmarks and fail
# when any is more than 25% slower (ns/op) than the committed baseline
# record. The baseline is frozen so drift is measured against a fixed point;
# bump it deliberately, with the numbers, when a PR re-baselines. Bumped
# PR5 → PR7 with the wire-protocol record: the PR5 container measured
# CrossSegmentPoint at 680 ns/op where today's measures 790–1100 on
# identical code (checked at the pre-PR commit), so gating against PR5 had
# started failing on environment drift alone; BENCH_PR7.json re-records all
# five segstore rows on current hardware (within noise of PR5, speedups
# 0.90–0.98x at the moment of recording). Bumped PR7 → PR9 when the
# standing-query PR re-recorded everything on current hardware and added
# the alert-latency and stalled-subscriber rows.
# The second leg re-measures the serving-latency record (burstload quantiles
# over both transports) against the same BENCH_PR7.json; closed-loop tail
# quantiles are noisier still, so its threshold only trips on
# transport-level catastrophes (e.g. wire point p50 µs → ms), never jitter.
BENCH_BASELINE ?= BENCH_PR9.json
SERVE_BASELINE ?= BENCH_PR9.json
# benchjson keeps the fastest of the -count 6 runs per benchmark: the
# min-of-N floor converges on the code's true cost as N grows, where a
# single run wanders with the neighbors — identical code measured 791
# ns/op and 1038 ns/op for CrossSegmentPoint half an hour apart (+31%).
# Deepening the floor from 3 to 6 runs is what lets the threshold sit at
# 40% (tight enough to catch a genuine ~50% structural regression) without
# failing on container noise alone.
bench-baseline:
	$(GO) test -run NONE -bench Segstore -benchmem -benchtime 1s -count 6 ./internal/segstore/ \
		| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -max-regress 40 -o /dev/null
	BURSTLOAD_RECORD=1 $(GO) test -v -count 1 -run 'TestServingLatencyRecord' ./cmd/burstd/ \
		| $(GO) run ./cmd/benchjson -baseline $(SERVE_BASELINE) -max-regress 150 -o /dev/null

# Machine-readable benchmark record for the current PR (see DESIGN.md).
# Earlier records (BENCH_PR2.json: query-path overhaul, pinned against
# BenchmarkSketchBurstiness pre-overhaul at 480.3 ns/op; BENCH_PR4.json:
# segmented store) are frozen historical baselines — regenerating them on
# today's code would erase the before/after they exist to document. Note on
# the parallel pair: the BurstyEvents facade now routes to the sequential
# walk when GOMAXPROCS < 2, because the raw fan-out measured ~0.96x on a
# single-CPU host; the dyadic-package benchmark still measures the raw
# parallel walk, so that pair can read slightly below 1x there.
bench-json:
	{ $(GO) test -run NONE -bench Segstore -benchmem -benchtime 2s ./internal/segstore/ ; \
	  $(GO) test -run NONE -bench Downsample -benchmem -benchtime 2s ./internal/pbe2/ ; \
	  BURSTLOAD_RECORD=1 $(GO) test -v -count 1 -run 'TestServingLatencyRecord' ./cmd/burstd/ ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_PR10.json -baseline BENCH_PR9.json \
			-note "Time-decayed compaction record vs the PR9 standing-query record. New rows: SegstoreDecayRun vs SegstoreDecayRunNaive pit the streaming downsample merge kernel against the merge-then-rebuild twin on the same 4-segment run; SegstoreDecayFootprint/{decay,full} ingest the same ~42-day synthetic stream and report the retained-bytes metric family (whole store plus per-tier split) — the decay leg must come out far below the full leg, the O(log T) vs O(T) claim; SegstoreDeepHistory/{point,events,times}/{decayed,full} measure historical queries deep in tier-2 territory, where coarser segments mean fewer cells scanned, so decayed legs must be no worse; PBE2Downsample vs PBE2DownsampleNaive pin the per-layer kernel. Pre-existing segstore and serve rows carry the PR9 baseline diff"

# Human-readable evaluation tables (paper Section VI).
experiments:
	$(GO) run ./cmd/burstbench -all -scale 0.02 -queries 300

# Short fuzzing pass over every decoder. FUZZTIME is overridable so CI can
# run a quicker smoke (make fuzz FUZZTIME=10s).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -fuzz FuzzLoad$$ -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorLoad -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzLoadSingle -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorAppend -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzManifestLoad -fuzztime $(FUZZTIME) ./internal/segstore/
	$(GO) test -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/segstore/
	$(GO) test -fuzz FuzzWALRecordDecode -fuzztime $(FUZZTIME) ./internal/segstore/
	$(GO) test -fuzz FuzzWireFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzAlertFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzSubscriptionDecode -fuzztime $(FUZZTIME) ./internal/wire/

clean:
	$(GO) clean ./...
