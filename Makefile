# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race race-segstore lint bench bench-smoke bench-json bench-figures experiments fuzz clean

all: build vet test

# Full pre-merge gate: compile, static checks (vet plus the repo's own
# analyzers), tests, race detector, and one iteration of every benchmark so a
# broken benchmark can't rot unnoticed.
check: build vet lint test race race-segstore bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants go vet cannot see: decoder allocation safety,
# dropped errors, lock discipline, noalloc hot paths, fastpath twins.
# See docs/ANALYZERS.md.
lint:
	$(GO) run ./cmd/histlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The segment store's concurrency tests are the repo's sharpest race bait
# (append vs seal vs compaction vs lock-free snapshots); run them under the
# race detector with a longer timeout and no result caching so `make check`
# always exercises them fresh.
race-segstore:
	$(GO) test -race -count 1 -run 'TestConcurrent' ./internal/segstore/ ./cmd/burstd/

# Microbenchmarks plus one pass of every figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# One compile-and-run iteration of every benchmark; part of `check`.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Machine-readable query-path benchmark record (see DESIGN.md). The pinned
# baseline is BenchmarkSketchBurstiness as measured immediately before the
# query-path overhaul, so the recorded speedup tracks the real before/after
# even though the naive in-tree path also got faster.
bench-json:
	$(GO) test -run NONE -bench 'SketchBurstiness|SketchEstimateF|SketchBurstyTimes|ViewBreakpoints|BurstyEvents' -benchmem -benchtime 2s ./internal/cmpbe/ ./internal/dyadic/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR2.json \
			-pin BenchmarkSketchBurstiness=480.3 \
			-note "pinned baseline: BenchmarkSketchBurstiness pre-overhaul at 480.3 ns/op, 48 B/op, 1 alloc/op; BurstyEventsParallel uses GOMAXPROCS workers, so on a single-CPU host it degrades to the sequential walk and the pair shows ~1x"
	$(GO) test -run NONE -bench Segstore -benchmem -benchtime 2s ./internal/segstore/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR4.json \
			-note "segmented store: AppendSeal is live-ingest throughput with background sealing; CompactMerge is one 4x4096-element compaction; CrossSegmentPoint (16 segments) vs SingleSegmentPoint (1 segment) is the per-query cost of summing per-segment estimates before the median"

# Human-readable evaluation tables (paper Section VI).
experiments:
	$(GO) run ./cmd/burstbench -all -scale 0.02 -queries 300

# Short fuzzing pass over every decoder. FUZZTIME is overridable so CI can
# run a quicker smoke (make fuzz FUZZTIME=10s).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -fuzz FuzzLoad$$ -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorLoad -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzLoadSingle -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorAppend -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzManifestLoad -fuzztime $(FUZZTIME) ./internal/segstore/

clean:
	$(GO) clean ./...
