# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race race-segstore crash lint bench bench-smoke bench-baseline bench-json bench-figures experiments fuzz clean

all: build vet test

# Full pre-merge gate: compile, static checks (vet plus the repo's own
# analyzers), tests, race detector, the crash/fault-injection suite, and one
# iteration of every benchmark so a broken benchmark can't rot unnoticed.
check: build vet lint test race race-segstore crash bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants go vet cannot see: decoder allocation safety,
# dropped errors, lock discipline, noalloc hot paths, fastpath twins.
# See docs/ANALYZERS.md.
lint:
	$(GO) run ./cmd/histlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The segment store's concurrency tests are the repo's sharpest race bait
# (append vs seal vs compaction vs lock-free snapshots); run them under the
# race detector with a longer timeout and no result caching so `make check`
# always exercises them fresh.
race-segstore:
	$(GO) test -race -count 1 -run 'TestConcurrent' ./internal/segstore/ ./cmd/burstd/

# Durability gate: crash-at-every-byte sweeps over the WAL, segment, and
# manifest write paths, bit-flip corruption recovery, the subprocess
# SIGKILL ack-contract test, scrub/quarantine, and degraded-mode serving —
# all under the race detector, uncached, so `make check` re-proves the
# "no acked append is ever lost" contract on every run.
crash:
	$(GO) test -race -count 1 -run 'TestCrash|TestWAL|TestStager|TestScrub|TestCorrupt|TestDiskFault|TestQuarantine' \
		./internal/segstore/ ./internal/faultio/ ./cmd/burstd/

# Microbenchmarks plus one pass of every figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# One compile-and-run iteration of every benchmark, then the regression
# gate; part of `check`.
bench-smoke: bench-baseline
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Regression gate: re-measure the pinned segment-store benchmarks and fail
# when any is more than 25% slower (ns/op) than the committed baseline
# record. The baseline stays frozen at the record taken after the ingest &
# compaction overhaul (BENCH_PR5.json) so drift is measured against a fixed
# point; bump it deliberately, with the numbers, when a PR re-baselines.
BENCH_BASELINE ?= BENCH_PR5.json
bench-baseline:
	$(GO) test -run NONE -bench Segstore -benchmem -benchtime 1s ./internal/segstore/ \
		| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -max-regress 25 -o /dev/null

# Machine-readable benchmark record for the current PR (see DESIGN.md).
# Earlier records (BENCH_PR2.json: query-path overhaul, pinned against
# BenchmarkSketchBurstiness pre-overhaul at 480.3 ns/op; BENCH_PR4.json:
# segmented store) are frozen historical baselines — regenerating them on
# today's code would erase the before/after they exist to document. Note on
# the parallel pair: the BurstyEvents facade now routes to the sequential
# walk when GOMAXPROCS < 2, because the raw fan-out measured ~0.96x on a
# single-CPU host; the dyadic-package benchmark still measures the raw
# parallel walk, so that pair can read slightly below 1x there.
bench-json:
	$(GO) test -run NONE -bench Segstore -benchmem -benchtime 2s ./internal/segstore/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR5.json -baseline BENCH_PR4.json \
			-note "ingest & compaction overhaul vs the frozen PR4 record: AppendSeal now drives 512-element AppendBatch calls (the shape burstd's sharded stager produces), AppendSealElement is the per-element reference, CompactMerge is the streaming segment-merge kernel, CrossSegmentPoint/SingleSegmentPoint reuse pooled row-sum scratch; baseline_diffs carries the per-benchmark before/after"

# Human-readable evaluation tables (paper Section VI).
experiments:
	$(GO) run ./cmd/burstbench -all -scale 0.02 -queries 300

# Short fuzzing pass over every decoder. FUZZTIME is overridable so CI can
# run a quicker smoke (make fuzz FUZZTIME=10s).
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -fuzz FuzzLoad$$ -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorLoad -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzLoadSingle -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzDetectorAppend -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz FuzzManifestLoad -fuzztime $(FUZZTIME) ./internal/segstore/
	$(GO) test -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/segstore/
	$(GO) test -fuzz FuzzWALRecordDecode -fuzztime $(FUZZTIME) ./internal/segstore/

clean:
	$(GO) clean ./...
