# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race bench bench-figures experiments fuzz clean

all: build vet test

# Full pre-merge gate: compile, static checks, tests, race detector.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Microbenchmarks plus one pass of every figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# Human-readable evaluation tables (paper Section VI).
experiments:
	$(GO) run ./cmd/burstbench -all -scale 0.02 -queries 300

# Short fuzzing pass over every decoder.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 20s ./internal/stream/
	$(GO) test -fuzz FuzzLoad$$ -fuzztime 20s .
	$(GO) test -fuzz FuzzDetectorLoad -fuzztime 20s .
	$(GO) test -fuzz FuzzLoadSingle -fuzztime 20s .
	$(GO) test -fuzz FuzzDetectorAppend -fuzztime 20s .

clean:
	$(GO) clean ./...
