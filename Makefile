# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet test race bench bench-smoke bench-json bench-figures experiments fuzz clean

all: build vet test

# Full pre-merge gate: compile, static checks, tests, race detector, and one
# iteration of every benchmark so a broken benchmark can't rot unnoticed.
check: build vet test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Microbenchmarks plus one pass of every figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# One compile-and-run iteration of every benchmark; part of `check`.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Machine-readable query-path benchmark record (see DESIGN.md). The pinned
# baseline is BenchmarkSketchBurstiness as measured immediately before the
# query-path overhaul, so the recorded speedup tracks the real before/after
# even though the naive in-tree path also got faster.
bench-json:
	$(GO) test -run NONE -bench 'SketchBurstiness|SketchEstimateF|SketchBurstyTimes|ViewBreakpoints|BurstyEvents' -benchmem -benchtime 2s ./internal/cmpbe/ ./internal/dyadic/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR2.json \
			-pin BenchmarkSketchBurstiness=480.3 \
			-note "pinned baseline: BenchmarkSketchBurstiness pre-overhaul at 480.3 ns/op, 48 B/op, 1 alloc/op; BurstyEventsParallel uses GOMAXPROCS workers, so on a single-CPU host it degrades to the sequential walk and the pair shows ~1x"

# Human-readable evaluation tables (paper Section VI).
experiments:
	$(GO) run ./cmd/burstbench -all -scale 0.02 -queries 300

# Short fuzzing pass over every decoder.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 20s ./internal/stream/
	$(GO) test -fuzz FuzzLoad$$ -fuzztime 20s .
	$(GO) test -fuzz FuzzDetectorLoad -fuzztime 20s .
	$(GO) test -fuzz FuzzLoadSingle -fuzztime 20s .
	$(GO) test -fuzz FuzzDetectorAppend -fuzztime 20s .

clean:
	$(GO) clean ./...
